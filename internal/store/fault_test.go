package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"magicstate/internal/core"
)

// fillFaulty puts n records, tolerating injected Put failures, and
// returns the keys alongside the index of the first Put that failed
// (-1 when all landed). Keys match fill's so tests can cross-check.
func fillFaulty(t *testing.T, s *Store, n int) (keys []Key, firstFail int) {
	t.Helper()
	firstFail = -1
	keys = make([]Key, n)
	for i := 0; i < n; i++ {
		keys[i] = KeyOf(core.Config{K: 2 + i, Levels: 1, Seed: int64(i)})
		payload := []byte(fmt.Sprintf(`{"record":%d,"pad":%q}`, i, bytes.Repeat([]byte{'x'}, i%17)))
		err := s.Put(keys[i], payload)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("Put %d failed with a non-injected error: %v", i, err)
			}
			if firstFail < 0 {
				firstFail = i
			}
		}
	}
	return keys, firstFail
}

// TestFaultPlanParse pins the spec grammar the msfud -fault-store flag
// accepts.
func TestFaultPlanParse(t *testing.T) {
	p, err := ParseFaultPlan("failwrite=7,shortwrite=19,failsync=3,stall=10:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.FailWriteOp != 7 || p.ShortWriteOp != 19 || p.FailSyncOp != 3 ||
		p.StallEveryOp != 10 || p.Stall != 2*time.Millisecond {
		t.Fatalf("parsed failwrite=%d shortwrite=%d failsync=%d stall=%d:%v",
			p.FailWriteOp, p.ShortWriteOp, p.FailSyncOp, p.StallEveryOp, p.Stall)
	}
	if p, err := ParseFaultPlan(""); err != nil ||
		p.FailWriteOp != 0 || p.ShortWriteOp != 0 || p.FailSyncOp != 0 || p.StallEveryOp != 0 || p.Stall != 0 {
		t.Fatalf("empty spec = %v, %v; want zero plan", p, err)
	}
	for _, bad := range []string{"failwrite", "failwrite=x", "stall=2ms", "stall=0:2ms", "bogus=1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted a bad spec", bad)
		}
	}
}

// TestFaultInjectedWriteIsConfined is the injected-fault extension of
// the byte-truncation property tests: for every write operation n, a
// store whose nth write fails (outright or torn) must (a) surface
// ErrInjected from exactly one Put, (b) keep serving and accepting
// records afterwards — the failed Put rolled both files back to a
// record boundary — and (c) reopen to exactly the records whose Puts
// reported success. Each record costs two writes (payload, index
// entry), so sweeping n over 2*records+1 hits every boundary: payload
// write, index write, and the no-fault control past the end.
func TestFaultInjectedWriteIsConfined(t *testing.T) {
	const n = 10
	for _, mode := range []string{"failwrite", "shortwrite"} {
		for op := 1; op <= 2*n+1; op++ {
			t.Run(fmt.Sprintf("%s_op%d", mode, op), func(t *testing.T) {
				dir := t.TempDir()
				plan, err := ParseFaultPlan(fmt.Sprintf("%s=%d", mode, op))
				if err != nil {
					t.Fatal(err)
				}
				s, err := OpenWithFaults(dir, plan)
				if err != nil {
					t.Fatal(err)
				}
				keys, firstFail := fillFaulty(t, s, n)
				wantFail := -1
				if op <= 2*n {
					wantFail = (op - 1) / 2 // record whose payload or index write was op
				}
				if firstFail != wantFail {
					t.Fatalf("Put %d failed, want %d", firstFail, wantFail)
				}
				// Exactly the non-failed records are live, in memory and on
				// a clean reopen (rollback must leave aligned files).
				wantLive := n
				if wantFail >= 0 {
					wantLive = n - 1
				}
				if got := s.Len(); got != wantLive {
					t.Fatalf("live records = %d, want %d", got, wantLive)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				rs, err := Open(dir)
				if err != nil {
					t.Fatalf("reopen after injected fault: %v", err)
				}
				defer rs.Close()
				if got := rs.Len(); got != wantLive {
					t.Fatalf("recovered %d records, want %d", got, wantLive)
				}
				for i, k := range keys {
					_, ok := rs.Get(k)
					if want := i != wantFail; ok != want {
						t.Fatalf("record %d present = %v, want %v", i, ok, want)
					}
				}
				// The recovered store accepts appends again.
				if err := rs.Put(KeyOf(core.Config{K: 5000 + op}), []byte(`{"resumed":true}`)); err != nil {
					t.Fatalf("Put after recovery: %v", err)
				}
			})
		}
	}
}

// TestFaultTornWriteThenCrash composes injected mid-op faults with the
// byte-truncation property: a torn index write whose rollback never ran
// (the process died mid-Put) must still recover to the longest valid
// prefix at every subsequent truncation point. The torn state is
// manufactured by copying the files the instant the short write lands,
// before Put's rollback truncates them.
func TestFaultTornWriteThenCrash(t *testing.T) {
	const n = 6
	// Op 2*k writes record k's index entry short (ops are 1-based:
	// record k costs ops 2k+1 and 2k+2, so op 2k+2 is its index write).
	for rec := 1; rec < n; rec++ {
		op := 2*rec + 2
		dir := t.TempDir()
		plan := &FaultPlan{ShortWriteOp: int64(op)}
		s, err := OpenWithFaults(dir, plan)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]Key, n)
		var tornLog, tornIdx []byte
		for i := 0; i < n; i++ {
			keys[i] = KeyOf(core.Config{K: 2 + i, Levels: 1, Seed: int64(i)})
			err := s.Put(keys[i], []byte(fmt.Sprintf(`{"record":%d}`, i)))
			if i == rec {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("rec %d: Put %d = %v, want injected fault", rec, i, err)
				}
				// Snapshot the torn on-disk state before this loop's next
				// Put appends past the rollback point. Put already rolled
				// back, so re-tear: append half an index entry to simulate
				// the crash-before-rollback image.
				tornLog, _ = os.ReadFile(filepath.Join(dir, logName))
				tornIdx, _ = os.ReadFile(filepath.Join(dir, idxName))
				tornLog = append(tornLog, []byte(fmt.Sprintf(`{"record":%d}`, i))...)
				tornIdx = append(tornIdx, bytes.Repeat([]byte{0xAB}, entrySize/2)...)
			} else if err != nil {
				t.Fatalf("rec %d: Put %d: %v", rec, i, err)
			}
		}
		s.Close()

		// Replay the torn image at every index truncation point.
		for cut := 0; cut <= len(tornIdx); cut++ {
			cdir := filepath.Join(dir, fmt.Sprintf("cut%d", cut))
			os.MkdirAll(cdir, 0o755)
			os.WriteFile(filepath.Join(cdir, logName), tornLog, 0o644)
			os.WriteFile(filepath.Join(cdir, idxName), tornIdx[:cut], 0o644)
			want := cut / entrySize
			if want > rec {
				want = rec // entries at and past the torn record never validate
			}
			rs, err := Open(cdir)
			if err != nil {
				t.Fatalf("rec %d cut %d: Open: %v", rec, cut, err)
			}
			if got := rs.Len(); got != want {
				t.Fatalf("rec %d cut %d: recovered %d records, want %d", rec, cut, got, want)
			}
			for i := 0; i < want; i++ {
				if _, ok := rs.Get(keys[i]); !ok {
					t.Fatalf("rec %d cut %d: surviving record %d missing", rec, cut, i)
				}
			}
			rs.Close()
			os.RemoveAll(cdir)
		}
	}
}

// TestFaultSyncErrorSurfacesButPreservesRecords: an injected fsync
// failure must be reported to the caller (Sync and Close propagate it)
// without costing any committed record.
func TestFaultSyncErrorSurfacesButPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{FailSyncOp: 1}
	s, err := OpenWithFaults(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := fillFaulty(t, s, 5)
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync = %v, want injected fault", err)
	}
	// The next sync (op 2) passes; Close must succeed and the records
	// must all be there on reopen.
	if err := s.Close(); err != nil {
		t.Fatalf("Close after failed sync: %v", err)
	}
	rs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.Len(); got != 5 {
		t.Fatalf("recovered %d records, want 5", got)
	}
	for i, k := range keys {
		if _, ok := rs.Get(k); !ok {
			t.Fatalf("record %d missing after sync fault", i)
		}
	}
}

// TestFaultStallKeepsStoreCorrect: stalled writes change timing only —
// every record still lands and survives reopen.
func TestFaultStallKeepsStoreCorrect(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{StallEveryOp: 3, Stall: time.Millisecond}
	s, err := OpenWithFaults(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	keys, firstFail := fillFaulty(t, s, 8)
	if firstFail != -1 {
		t.Fatalf("stall plan failed Put %d", firstFail)
	}
	s.Close()
	rs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	for i, k := range keys {
		if _, ok := rs.Get(k); !ok {
			t.Fatalf("record %d missing", i)
		}
	}
}
