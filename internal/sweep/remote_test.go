package sweep

import (
	"context"
	"sync/atomic"
	"testing"

	"magicstate/internal/core"
	"magicstate/internal/store"
)

// TestRemoteTierServesPoints runs the same grid on a "peer" engine
// first, then wires a second engine's Remote hook to the peer and
// checks every unique point is served remotely, persisted locally, and
// scalar-identical to a locally computed run.
func TestRemoteTierServesPoints(t *testing.T) {
	cfgs := smallGrid()

	peer := New(Options{Workers: 1})
	want, err := peer.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var remoteCalls atomic.Int64
	eng := New(Options{Workers: 2, Store: st, Remote: func(ctx context.Context, cfg core.Config) (*core.Report, bool) {
		remoteCalls.Add(1)
		rep, err := peer.RunOneContext(ctx, cfg)
		if err != nil {
			return nil, false
		}
		return rep, true
	}})

	got, err := eng.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if hits := eng.RemoteHits(); hits != 3 {
		t.Fatalf("RemoteHits = %d, want 3 unique points", hits)
	}
	if calls := remoteCalls.Load(); calls != 3 {
		t.Fatalf("remote called %d times, want 3 (memo dedups the duplicate)", calls)
	}
	// Remote results are persisted like local ones.
	if puts := st.Stats().Puts; puts != 3 {
		t.Fatalf("store holds %d records, want 3", puts)
	}
	for i := range want {
		a, b := *want[i], *got[i]
		a.Factory, a.Placement, a.Sim = nil, nil, nil
		b.Factory, b.Placement, b.Sim = nil, nil, nil
		if a != b {
			t.Fatalf("point %d differs:\n local:  %+v\n remote: %+v", i, a, b)
		}
	}
}

// TestRemoteTierFallsBackToLocalCompute declines every remote offer and
// checks the engine computes everything itself, correctly.
func TestRemoteTierFallsBackToLocalCompute(t *testing.T) {
	cfgs := smallGrid()
	var offers atomic.Int64
	eng := New(Options{Workers: 1, Remote: func(ctx context.Context, cfg core.Config) (*core.Report, bool) {
		offers.Add(1)
		return nil, false
	}})
	reps, err := eng.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if offers.Load() != 3 {
		t.Fatalf("remote offered %d points, want 3", offers.Load())
	}
	if eng.RemoteHits() != 0 {
		t.Fatalf("RemoteHits = %d, want 0", eng.RemoteHits())
	}
	for i, rep := range reps {
		if rep == nil || rep.Latency <= 0 {
			t.Fatalf("point %d not computed locally: %+v", i, rep)
		}
	}
}

// TestRemoteTierSkipsUncacheablePoints: trace-carrying configs have no
// record form, so they must never be offered to the remote tier.
func TestRemoteTierSkipsUncacheablePoints(t *testing.T) {
	var offers atomic.Int64
	eng := New(Options{Workers: 1, Remote: func(ctx context.Context, cfg core.Config) (*core.Report, bool) {
		offers.Add(1)
		return nil, false
	}})
	cfg := core.Config{K: 2, Levels: 1, RecordPaths: true}
	if _, err := eng.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	if offers.Load() != 0 {
		t.Fatalf("uncacheable point offered to the remote tier %d times", offers.Load())
	}
}

// TestRemoteTierOrderBelowStore: a point already on disk is a disk hit,
// never a remote call.
func TestRemoteTierOrderBelowStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pre := New(Options{Workers: 1, Store: st})
	cfg := core.Config{K: 2, Levels: 1, Strategy: core.StrategyLinear, Seed: 1}
	if _, err := pre.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var offers atomic.Int64
	eng := New(Options{Workers: 1, Store: st2, Remote: func(ctx context.Context, cfg core.Config) (*core.Report, bool) {
		offers.Add(1)
		return nil, false
	}})
	if _, err := eng.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	if eng.DiskHits() != 1 || offers.Load() != 0 {
		t.Fatalf("diskHits=%d remoteOffers=%d, want 1/0", eng.DiskHits(), offers.Load())
	}
}
