package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	// Two tight blobs far apart.
	for i := 0; i < 20; i++ {
		pts = append(pts, Point{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, Point{100 + rng.Float64(), 100 + rng.Float64()})
	}
	res := KMeans(pts, 2, 100, rng)
	if len(res.Centroids) != 2 {
		t.Fatalf("want 2 centroids, got %d", len(res.Centroids))
	}
	// All points in the first blob must share a cluster, likewise the second,
	// and the two clusters must differ.
	c0 := res.Assign[0]
	for i := 1; i < 20; i++ {
		if res.Assign[i] != c0 {
			t.Fatalf("blob 0 split across clusters: %v", res.Assign[:20])
		}
	}
	c1 := res.Assign[20]
	for i := 21; i < 40; i++ {
		if res.Assign[i] != c1 {
			t.Fatalf("blob 1 split across clusters")
		}
	}
	if c0 == c1 {
		t.Fatal("blobs assigned to same cluster")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if res := KMeans(nil, 3, 10, rng); len(res.Centroids) != 0 {
		t.Error("empty input should yield empty result")
	}
	if res := KMeans([]Point{{1, 1}}, 0, 10, rng); len(res.Centroids) != 1 {
		t.Error("k clamped up to 1")
	}
	pts := []Point{{0, 0}, {1, 1}}
	if res := KMeans(pts, 5, 10, rng); len(res.Centroids) != 2 {
		t.Error("k clamped down to len(pts)")
	}
	if res := KMeans(pts, 2, 10, nil); len(res.Centroids) != 0 {
		t.Error("nil rng should yield empty result")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{5, 5}
	}
	res := KMeans(pts, 3, 20, rng)
	if len(res.Centroids) != 3 {
		t.Fatalf("want 3 centroids even for degenerate data, got %d", len(res.Centroids))
	}
	for _, c := range res.Centroids {
		if c != (Point{5, 5}) {
			t.Errorf("centroid %v should coincide with data", c)
		}
	}
}

func TestKMeansAssignmentsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		k := 1 + rng.Intn(6)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 50, rng.Float64() * 50}
		}
		res := KMeans(pts, k, 30, rng)
		if len(res.Assign) != n {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= len(res.Centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	i1 := Inertia(pts, KMeans(pts, 1, 50, rand.New(rand.NewSource(5))))
	i8 := Inertia(pts, KMeans(pts, 8, 50, rand.New(rand.NewSource(5))))
	if i8 >= i1 {
		t.Errorf("inertia should shrink with more clusters: k=1 %v, k=8 %v", i1, i8)
	}
}
