package core

import (
	"bytes"
	"context"
	"testing"
)

func TestStagedEqualsMonolithic(t *testing.T) {
	// RunContext is documented as the exact serial composition of the
	// exported stages; pin that the two paths agree field for field.
	for _, cfg := range []Config{
		{K: 2, Levels: 1, Strategy: StrategyLinear},
		{K: 2, Levels: 2, Strategy: StrategyRandom, Seed: 5},
		{K: 2, Levels: 2, Strategy: StrategyStitch, Seed: 3},
	} {
		mono, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%+v: RunContext: %v", cfg, err)
		}
		ctx := context.Background()
		b, err := BuildStage(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PlaceStage(ctx, cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SimStage(ctx, cfg, b, p)
		if err != nil {
			t.Fatal(err)
		}
		staged := Assemble(cfg, b, p, sim)
		a, z := *mono, *staged
		a.Factory, a.Placement, a.Sim = nil, nil, nil
		z.Factory, z.Placement, z.Sim = nil, nil, nil
		if a != z {
			t.Fatalf("staged composition differs from RunContext for %+v:\n mono:   %+v\n staged: %+v", cfg, a, z)
		}
	}
}

// TestBuildArtifactCodecRoundTrip pins the codec's canonical form:
// encode→decode→encode is byte-identical, and a decoded artifact drives
// the downstream stages to the same simulation outcome the original
// did. Both factory kinds are covered (bravyi, and stitch with its
// fused placement).
func TestBuildArtifactCodecRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{K: 3, Levels: 1, Strategy: StrategyLinear},
		{K: 2, Levels: 2, Reuse: true, Strategy: StrategyLinear},
		{K: 2, Levels: 2, Strategy: StrategyStitch, Seed: 7},
	} {
		b, err := BuildStage(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		enc1 := EncodeBuildArtifact(b)
		got, err := DecodeBuildArtifact(enc1)
		if err != nil {
			t.Fatalf("%+v: decode: %v", cfg, err)
		}
		if enc2 := EncodeBuildArtifact(got); !bytes.Equal(enc1, enc2) {
			t.Fatalf("%+v: re-encoding a decoded build artifact changed its bytes", cfg)
		}
		gp, bp := got.Factory.Params, b.Factory.Params
		if gp.K != bp.K || gp.Levels != bp.Levels || gp.Reuse != bp.Reuse || gp.Barriers != bp.Barriers {
			t.Fatalf("params drifted: %+v vs %+v", gp, bp)
		}
		if gp.Assigner != nil {
			t.Fatal("Assigner must not survive a decode (it is deliberately dropped)")
		}
		if (got.Placement != nil) != (cfg.Strategy == StrategyStitch) {
			t.Fatalf("%+v: placement presence wrong after decode", cfg)
		}

		// The decoded factory must carry everything the rest of the
		// pipeline reads: place and simulate from it and compare.
		p1, err := PlaceStage(context.Background(), cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := PlaceStage(context.Background(), cfg, got)
		if err != nil {
			t.Fatalf("%+v: placing from decoded artifact: %v", cfg, err)
		}
		s1, err := SimStage(context.Background(), cfg, b, p1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := SimStage(context.Background(), cfg, got, p2)
		if err != nil {
			t.Fatalf("%+v: simulating from decoded artifact: %v", cfg, err)
		}
		if s1.Latency != s2.Latency || s1.Area != s2.Area || s1.Stalls != s2.Stalls {
			t.Fatalf("%+v: decoded artifact simulates differently: %d/%d/%d vs %d/%d/%d",
				cfg, s2.Latency, s2.Area, s2.Stalls, s1.Latency, s1.Area, s1.Stalls)
		}
	}
}

func TestPlaceAndSimArtifactCodecRoundTrip(t *testing.T) {
	cfg := Config{K: 2, Levels: 2, Strategy: StrategyRandom, Seed: 11}
	ctx := context.Background()
	b, err := BuildStage(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlaceStage(ctx, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	encP := EncodePlaceArtifact(p)
	gotP, err := DecodePlaceArtifact(encP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encP, EncodePlaceArtifact(gotP)) {
		t.Fatal("re-encoding a decoded place artifact changed its bytes")
	}
	if gotP.Sim != nil {
		t.Fatal("decoded place artifact must not carry a Sim byproduct")
	}
	if gotP.Placement.Pos[0] != p.Placement.Pos[0] {
		t.Fatal("decoded placement moved a qubit")
	}

	sim, err := SimStage(ctx, cfg, b, p)
	if err != nil {
		t.Fatal(err)
	}
	encS := EncodeSimArtifact(sim)
	gotS, err := DecodeSimArtifact(encS)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encS, EncodeSimArtifact(gotS)) {
		t.Fatal("re-encoding a decoded sim artifact changed its bytes")
	}
	if gotS.Latency != sim.Latency || gotS.Area != sim.Area || gotS.Stalls != sim.Stalls {
		t.Fatal("decoded sim artifact drifted on scalar fields")
	}
	if len(gotS.Start) != len(sim.Start) || len(gotS.End) != len(sim.End) {
		t.Fatal("decoded sim artifact dropped the timing arrays")
	}

	// Assembly from decoded artifacts must match assembly from fresh
	// ones — the property the durable stage tier depends on.
	fresh := Assemble(cfg, b, p, sim)
	replayed := Assemble(cfg, b, gotP, gotS)
	a, z := *fresh, *replayed
	a.Factory, a.Placement, a.Sim = nil, nil, nil
	z.Factory, z.Placement, z.Sim = nil, nil, nil
	if a != z {
		t.Fatalf("assembly from decoded artifacts differs:\n fresh:    %+v\n replayed: %+v", a, z)
	}
}

// TestStageCodecRejectsCorruption exhausts every truncation point of a
// valid record of each kind, plus trailing bytes and a flipped version
// byte: all must fail the decode cleanly — never panic, never succeed.
func TestStageCodecRejectsCorruption(t *testing.T) {
	cfg := Config{K: 2, Levels: 2, Strategy: StrategyStitch, Seed: 1}
	ctx := context.Background()
	b, err := BuildStage(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlaceStage(ctx, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimStage(ctx, cfg, b, p)
	if err != nil {
		t.Fatal(err)
	}
	records := map[Stage][]byte{
		StageBuild: EncodeBuildArtifact(b),
		StagePlace: EncodePlaceArtifact(p),
		StageSim:   EncodeSimArtifact(sim),
	}
	for st, rec := range records {
		if err := ValidateStageArtifact(st, rec); err != nil {
			t.Fatalf("%s: pristine record rejected: %v", st, err)
		}
		for cut := 0; cut < len(rec); cut++ {
			if err := ValidateStageArtifact(st, rec[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes was admitted", st, cut, len(rec))
			}
		}
		trailing := append(append([]byte(nil), rec...), 0)
		if err := ValidateStageArtifact(st, trailing); err == nil {
			t.Fatalf("%s: trailing byte was admitted", st)
		}
		wrongVersion := append([]byte(nil), rec...)
		wrongVersion[len(stageMagicOf(st))] ^= 0xFF
		if err := ValidateStageArtifact(st, wrongVersion); err == nil {
			t.Fatalf("%s: flipped version byte was admitted", st)
		}
		// A record must never decode as another stage's kind.
		for other := range records {
			if other == st {
				continue
			}
			if err := ValidateStageArtifact(other, rec); err == nil {
				t.Fatalf("%s record decoded as %s", st, other)
			}
		}
	}
	if err := ValidateStageArtifact(Stage(99), records[StageBuild]); err == nil {
		t.Fatal("unknown stage id was admitted")
	}
}

// stageMagicOf maps a stage to its codec magic string, for tests that
// need to corrupt the bytes right after it.
func stageMagicOf(st Stage) string {
	switch st {
	case StageBuild:
		return buildMagic
	case StagePlace:
		return placeMagic
	default:
		return simMagic
	}
}

// TestAssemblePermLatencyFailureObservable is the regression test for
// the silently-swallowed stitch.PermutationLatency error: a mismatched
// factory/simulation pair (here: a config claiming two levels assembled
// against a single-round factory) must increment the process-wide
// failure counter instead of silently reporting PermLatency = 0 as if
// the window were empty.
func TestAssemblePermLatencyFailureObservable(t *testing.T) {
	cfg := Config{K: 2, Levels: 1, Strategy: StrategyLinear}
	ctx := context.Background()
	b, err := BuildStage(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Factory.Rounds) >= 2 {
		t.Fatalf("test premise broken: single-level factory has %d rounds", len(b.Factory.Rounds))
	}
	p, err := PlaceStage(ctx, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimStage(ctx, cfg, b, p)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy single-level assembly: no window requested, no failure.
	before := PermLatencyFailures()
	Assemble(cfg, b, p, sim)
	if got := PermLatencyFailures(); got != before {
		t.Fatalf("healthy assembly incremented the failure counter (%d -> %d)", before, got)
	}

	// The mismatch: Levels=2 requests the round-2 window, which the
	// one-round factory cannot answer.
	bad := cfg
	bad.Levels = 2
	rep := Assemble(bad, b, p, sim)
	if got := PermLatencyFailures(); got != before+1 {
		t.Fatalf("failed permutation-window computation not counted: %d, want %d", got, before+1)
	}
	if rep.PermLatency != 0 {
		t.Fatalf("failed window reported %d, want 0", rep.PermLatency)
	}

	// And a healthy multi-level assembly still produces the window
	// without touching the counter.
	cfg2 := Config{K: 2, Levels: 2, Strategy: StrategyLinear}
	b2, err := BuildStage(ctx, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlaceStage(ctx, cfg2, b2)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := SimStage(ctx, cfg2, b2, p2)
	if err != nil {
		t.Fatal(err)
	}
	mid := PermLatencyFailures()
	Assemble(cfg2, b2, p2, sim2)
	if got := PermLatencyFailures(); got != mid {
		t.Fatalf("healthy two-level assembly incremented the failure counter (%d -> %d)", mid, got)
	}
}
