package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
)

func simFactory(t testing.TB, k, levels int) (*bravyi.Factory, *mesh.Result) {
	t.Helper()
	f, err := bravyi.Build(bravyi.Params{K: k, Levels: levels, Reuse: levels >= 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := layout.Linear(f)
	res, err := mesh.Simulate(f.Circuit, pl, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestConcurrencyConservesBusyCycles(t *testing.T) {
	_, res := simFactory(t, 2, 1)
	for _, bins := range []int{1, 7, 32} {
		conc, err := Concurrency(res, bins)
		if err != nil {
			t.Fatal(err)
		}
		if len(conc) != bins {
			t.Fatalf("bins = %d, got %d values", bins, len(conc))
		}
		// Integral of concurrency over time equals total busy cycles.
		binWidth := float64(res.Latency) / float64(bins)
		var integral float64
		for _, v := range conc {
			integral += v * binWidth
		}
		busy := 0
		for i := range res.Start {
			if res.Start[i] >= 0 && res.End[i] > res.Start[i] {
				busy += res.End[i] - res.Start[i]
			}
		}
		if math.Abs(integral-float64(busy)) > 1e-6*float64(busy) {
			t.Errorf("bins=%d: integral %.1f, busy cycles %d", bins, integral, busy)
		}
	}
}

func TestConcurrencyRejectsBadBins(t *testing.T) {
	_, res := simFactory(t, 2, 1)
	if _, err := Concurrency(res, 0); err == nil {
		t.Error("bins=0 accepted")
	}
}

func TestBusyFractionBounds(t *testing.T) {
	_, res := simFactory(t, 2, 2)
	bf := BusyFraction(res)
	if bf <= 0 || bf > 1 {
		t.Errorf("busy fraction %g out of (0,1]", bf)
	}
	if got := BusyFraction(&mesh.Result{}); got != 0 {
		t.Errorf("empty result busy fraction %g", got)
	}
}

func TestRoundTimeline(t *testing.T) {
	f, res := simFactory(t, 2, 2)
	spans, err := RoundTimeline(f, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2 rounds", len(spans))
	}
	if spans[0].PermCycles() != 0 {
		t.Errorf("round 1 has a permutation window of %d cycles", spans[0].PermCycles())
	}
	if spans[1].PermCycles() <= 0 {
		t.Error("round 2 permutation window empty")
	}
	// Rounds execute in order under barriers.
	if spans[1].Start < spans[0].End {
		t.Errorf("round 2 starts at %d before round 1 ends at %d", spans[1].Start, spans[0].End)
	}
	// The permutation lies inside its round.
	if spans[1].PermStart < spans[1].Start || spans[1].PermEnd > spans[1].End {
		t.Errorf("permutation [%d,%d) escapes round [%d,%d)",
			spans[1].PermStart, spans[1].PermEnd, spans[1].Start, spans[1].End)
	}
	share := PermutationShare(spans, res.Latency)
	if share <= 0 || share >= 1 {
		t.Errorf("permutation share %g out of (0,1)", share)
	}
}

func TestRoundTimelineRejectsMismatch(t *testing.T) {
	f, _ := simFactory(t, 2, 1)
	if _, err := RoundTimeline(f, &mesh.Result{Start: []int{0}, End: []int{1}}); err == nil {
		t.Error("gate count mismatch accepted")
	}
}

func TestKindBreakdown(t *testing.T) {
	f, res := simFactory(t, 2, 1)
	kinds, err := KindBreakdown(f.Circuit, res)
	if err != nil {
		t.Fatal(err)
	}
	if kinds[circuit.KindInjectT] == 0 {
		t.Error("no injectT busy cycles in a distillation circuit")
	}
	total := 0
	for _, v := range kinds {
		total += v
	}
	busy := 0
	for i := range res.Start {
		if res.Start[i] >= 0 {
			busy += res.End[i] - res.Start[i]
		}
	}
	if total != busy {
		t.Errorf("kind breakdown sums to %d, busy cycles %d", total, busy)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("nil values rendered %q", got)
	}
	if got := Sparkline([]float64{0, 0, 0}, 3); got != "   " {
		t.Errorf("all-zero rendered %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(got)) != 8 {
		t.Fatalf("width = %d, want 8", len([]rune(got)))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("monotone ramp rendered %q", got)
	}
	// Resampling to narrower width still monotone non-decreasing.
	narrow := []rune(Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 4))
	for i := 1; i < len(narrow); i++ {
		if narrow[i] < narrow[i-1] {
			t.Errorf("resampled ramp not monotone: %q", string(narrow))
		}
	}
}

func TestWriteReport(t *testing.T) {
	f, res := simFactory(t, 2, 2)
	var sb strings.Builder
	if err := WriteReport(&sb, f, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"latency", "concurrency", "round 1", "round 2", "permutation share"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// Property: the concurrency integral equals busy cycles for arbitrary bin
// counts and factory sizes.
func TestConcurrencyPropertyConservation(t *testing.T) {
	f := func(binsRaw, kRaw uint8) bool {
		bins := int(binsRaw%40) + 1
		k := int(kRaw%3)*2 + 2
		fac, err := bravyi.Build(bravyi.Params{K: k, Levels: 1})
		if err != nil {
			return false
		}
		res, err := mesh.Simulate(fac.Circuit, layout.Linear(fac), mesh.Config{})
		if err != nil {
			return false
		}
		conc, err := Concurrency(res, bins)
		if err != nil {
			return false
		}
		binWidth := float64(res.Latency) / float64(bins)
		var integral float64
		for _, v := range conc {
			integral += v * binWidth
		}
		busy := 0
		for i := range res.Start {
			if res.Start[i] >= 0 {
				busy += res.End[i] - res.Start[i]
			}
		}
		return math.Abs(integral-float64(busy)) <= 1e-6*float64(busy)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
