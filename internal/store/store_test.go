package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"magicstate/internal/core"
)

// fill writes n records with deterministic keys and payloads and
// returns the keys in insertion order.
func fill(t *testing.T, s *Store, n int) []Key {
	t.Helper()
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		keys[i] = KeyOf(core.Config{K: 2 + i, Levels: 1, Seed: int64(i)})
		payload := []byte(fmt.Sprintf(`{"record":%d,"pad":%q}`, i, bytes.Repeat([]byte{'x'}, i%17)))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	return keys
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 25)
	if got := s.Len(); got != 25 {
		t.Fatalf("Len = %d, want 25", got)
	}
	// Duplicate put is a no-op.
	if err := s.Put(keys[3], []byte("overwrite")); err != nil {
		t.Fatal(err)
	}
	if p, _ := s.Get(keys[3]); bytes.Equal(p, []byte("overwrite")) {
		t.Fatal("duplicate Put overwrote an existing record")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 25 {
		t.Fatalf("reopened Len = %d, want 25", got)
	}
	for i, k := range keys {
		p, ok := s2.Get(k)
		if !ok {
			t.Fatalf("record %d missing after reopen", i)
		}
		want := fmt.Sprintf(`{"record":%d`, i)
		if !bytes.HasPrefix(p, []byte(want)) {
			t.Fatalf("record %d = %q, want prefix %q", i, p, want)
		}
	}
	// A reopened store keeps appending.
	extra := KeyOf(core.Config{K: 99, Levels: 1})
	if err := s2.Put(extra, []byte(`{"extra":true}`)); err != nil {
		t.Fatal(err)
	}

	// While s2 is open, a second open of the same directory is refused
	// (two writers would interleave appends and corrupt both files).
	if dup, err := Open(dir); err == nil {
		dup.Close()
		t.Fatal("second Open of an open directory succeeded")
	}

	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Len(); got != 26 {
		t.Fatalf("Len after append+reopen = %d, want 26", got)
	}
}

// TestRecoverLogTruncatedAtEveryByte is the crash-safety property test:
// for a log truncated at any byte boundary, Open must recover exactly
// the records whose payloads are fully contained in the remaining
// prefix, and leave the store appendable.
func TestRecoverLogTruncatedAtEveryByte(t *testing.T) {
	const n = 12
	master := t.TempDir()
	s, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(master, logName))
	if err != nil {
		t.Fatal(err)
	}
	idxBytes, err := os.ReadFile(filepath.Join(master, idxName))
	if err != nil {
		t.Fatal(err)
	}

	// Record extents, recomputed from the index, give the expected
	// survivor count per truncation point.
	ends := make([]int64, n)
	for i := 0; i < n; i++ {
		e := idxBytes[i*entrySize : (i+1)*entrySize]
		off := int64(uint64(e[32]) | uint64(e[33])<<8 | uint64(e[34])<<16 | uint64(e[35])<<24 |
			uint64(e[36])<<32 | uint64(e[37])<<40 | uint64(e[38])<<48 | uint64(e[39])<<56)
		length := int64(uint32(e[40]) | uint32(e[41])<<8 | uint32(e[42])<<16 | uint32(e[43])<<24)
		ends[i] = off + length
	}

	for cut := 0; cut <= len(logBytes); cut++ {
		dir := filepath.Join(master, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, logName), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, idxName), idxBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		want := 0
		for want < n && ends[want] <= int64(cut) {
			want++
		}
		rs, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if got := rs.Len(); got != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, want)
		}
		for i := 0; i < want; i++ {
			if _, ok := rs.Get(keys[i]); !ok {
				t.Fatalf("cut %d: surviving record %d missing", cut, i)
			}
		}
		// The recovered store must accept appends again.
		if err := rs.Put(KeyOf(core.Config{K: 1000 + cut}), []byte(`{"resumed":true}`)); err != nil {
			t.Fatalf("cut %d: Put after recovery: %v", cut, err)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		rs2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got := rs2.Len(); got != want+1 {
			t.Fatalf("cut %d: after append+reopen got %d records, want %d", cut, got, want+1)
		}
		rs2.Close()
		os.RemoveAll(dir)
	}
}

// TestRecoverIdxTruncatedAtEveryByte drives the same property on the
// index file: a torn index entry must drop exactly the records at and
// after the tear.
func TestRecoverIdxTruncatedAtEveryByte(t *testing.T) {
	const n = 8
	master := t.TempDir()
	s, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, _ := os.ReadFile(filepath.Join(master, logName))
	idxBytes, _ := os.ReadFile(filepath.Join(master, idxName))

	for cut := 0; cut <= len(idxBytes); cut++ {
		dir := filepath.Join(master, fmt.Sprintf("icut%d", cut))
		os.MkdirAll(dir, 0o755)
		os.WriteFile(filepath.Join(dir, logName), logBytes, 0o644)
		os.WriteFile(filepath.Join(dir, idxName), idxBytes[:cut], 0o644)
		want := cut / entrySize
		rs, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if got := rs.Len(); got != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, want)
		}
		for i := 0; i < want; i++ {
			if _, ok := rs.Get(keys[i]); !ok {
				t.Fatalf("cut %d: surviving record %d missing", cut, i)
			}
		}
		rs.Close()
		os.RemoveAll(dir)
	}
}

// TestRecoverCorruptPayload flips a byte inside an early payload: every
// record from that payload on must be dropped (the log is truncated
// back, so later extents no longer validate), earlier ones kept.
func TestRecoverCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 6)
	s.Close()

	logPath := filepath.Join(dir, logName)
	logBytes, _ := os.ReadFile(logPath)
	idxBytes, _ := os.ReadFile(filepath.Join(dir, idxName))
	// Corrupt a byte inside record 2's payload.
	e := idxBytes[2*entrySize : 3*entrySize]
	off := int(uint32(e[32]) | uint32(e[33])<<8 | uint32(e[34])<<16 | uint32(e[35])<<24)
	logBytes[off] ^= 0xff
	os.WriteFile(logPath, logBytes, 0o644)

	rs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := rs.Len(); got != 2 {
		t.Fatalf("recovered %d records, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if _, ok := rs.Get(keys[i]); !ok {
			t.Fatalf("record %d missing", i)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := KeyOf(core.Config{K: i, Seed: int64(i)}) // all workers contend on the same keys
				if err := s.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if p, ok := s.Get(k); !ok || !bytes.Equal(p, []byte(fmt.Sprintf(`{"i":%d}`, i))) {
					t.Errorf("Get(%d) = %q, %v", i, p, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	st := s.Stats()
	if st.Puts != 50 || st.Records != 50 {
		t.Fatalf("Stats = %+v, want 50 puts and records", st)
	}
}

func TestReportRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := core.Config{K: 4, Levels: 2, Reuse: true, Strategy: core.StrategyStitch, Seed: 7}
	rep := &core.Report{
		Config: cfg, Strategy: "HS", Latency: 1234, Area: 56, Volume: 69104.0 / 3.0,
		CriticalLatency: 900, CriticalVolume: 50400.5, PermLatency: 77, Stalls: 3,
	}
	if err := s.PutReport(cfg, rep); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LookupReport(cfg)
	if !ok {
		t.Fatal("LookupReport missed a stored config")
	}
	want := *rep
	want.Factory, want.Placement, want.Sim = nil, nil, nil
	if *got != want {
		t.Fatalf("round trip = %+v, want %+v", *got, want)
	}

	// Uncacheable configs are skipped on both sides.
	traced := cfg
	traced.RecordPaths = true
	if err := s.PutReport(traced, rep); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupReport(traced); ok {
		t.Fatal("LookupReport served a RecordPaths config from disk")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (uncacheable config must not be stored)", got)
	}
}

func TestPutAfterClose(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(Key{1}, []byte("x")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}
