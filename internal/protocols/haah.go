package protocols

import (
	"fmt"
	"math"
)

// HaahHastings models the low-space-overhead protocol family of Haah,
// Hastings, Poulin and Wecker [23], which the paper cites as the
// asymptotic frontier of distillation efficiency. The family achieves an
// input count per output that scales as O(log^γ(1/δ)) with γ < 1 for
// target output error δ, at the price of deep, sequential circuits. No
// explicit circuit is published at the granularity our mapper studies
// need, so this is a rate-and-footprint model only (DESIGN.md §2 records
// the substitution); it lets the planner chart where the asymptotic
// protocols overtake the block codes.
type HaahHastings struct {
	// Gamma is the asymptotic exponent γ; [23] constructs protocols
	// approaching γ → 0.678 and proves γ arbitrary close to 0 is
	// possible with number-theoretic constructions.
	Gamma float64
	// C is the constant prefactor on the input count (fit from the
	// concrete instances tabulated in [23]; their 17-to-1 style
	// instances land near C = 2).
	C float64
	// Suppression is the per-run error exponent: output error ~ ε^Suppression.
	Suppression int
	// BlockK is the batch size: the protocols distill BlockK states at
	// once on roughly 2·BlockK + O(log BlockK) qubits.
	BlockK int
	// eps memoizes the planner-supplied working point so Inputs() can
	// report a concrete integer; set by AtWorkingPoint.
	eps float64
}

// DefaultHaahHastings returns the concrete working instance used in the
// comparison experiment: γ = 0.678, C = 2, cubic suppression, batches of 8.
func DefaultHaahHastings() HaahHastings {
	return HaahHastings{Gamma: 0.678, C: 2, Suppression: 3, BlockK: 8, eps: 1e-3}
}

// AtWorkingPoint returns a copy of the model evaluated at injected error
// eps; Inputs() then reports the concrete input count the asymptotic rate
// implies for one round at that error.
func (h HaahHastings) AtWorkingPoint(eps float64) HaahHastings {
	h.eps = eps
	return h
}

// Name identifies the model with its exponent.
func (h HaahHastings) Name() string { return fmt.Sprintf("HHPW gamma=%.3f", h.Gamma) }

// Inputs returns the modeled raw-state count for one run at the working
// point: k · C · log^γ(1/δ) where δ is the run's output error.
func (h HaahHastings) Inputs() int {
	delta := h.OutputError(h.workingEps())
	perOut := h.C * math.Pow(math.Log(1/delta), h.Gamma)
	n := int(math.Ceil(perOut * float64(h.BlockK)))
	if n <= h.BlockK {
		n = h.BlockK + 1
	}
	return n
}

// Outputs returns the batch size.
func (h HaahHastings) Outputs() int { return h.blockK() }

// Qubits returns the modeled footprint 2k + ceil(log2 k) + 3 from the
// space-overhead analysis of [23].
func (h HaahHastings) Qubits() int {
	k := h.blockK()
	logk := 0
	for 1<<logk < k {
		logk++
	}
	return 2*k + logk + 3
}

// OutputError returns ε^Suppression with the same style of constant
// prefactor the block protocols carry (we use k+1, matching the parity
// check count scaling in [23]).
func (h HaahHastings) OutputError(eps float64) float64 {
	return float64(h.blockK()+1) * math.Pow(eps, float64(h.suppression()))
}

// SuccessProbability returns 1 − n·ε to first order: every input carries
// an independent chance of tripping a check.
func (h HaahHastings) SuccessProbability(eps float64) float64 {
	return clamp01(1 - float64(h.Inputs())*eps)
}

func (h HaahHastings) workingEps() float64 {
	if h.eps <= 0 {
		return 1e-3
	}
	return h.eps
}

func (h HaahHastings) blockK() int {
	if h.BlockK < 1 {
		return 1
	}
	return h.BlockK
}

func (h HaahHastings) suppression() int {
	if h.Suppression < 2 {
		return 2
	}
	return h.Suppression
}
