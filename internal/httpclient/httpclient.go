// Package httpclient is a small retrying HTTP client for talking to
// overload-aware services like cmd/msfud. The server side of this
// repo's robustness story sheds load with 429/503 + Retry-After; this
// package is the client side: it honors Retry-After when the server
// names a wait, falls back to jittered exponential backoff when it
// does not, replays request bodies across attempts, and gives up
// cleanly when a context ends. The load generator (cmd/msfuload) is
// its first consumer — a saturating workload only completes because
// rejected requests come back instead of being dropped.
//
// The zero Client is usable: defaults are five attempts, 100ms base
// delay doubling to a 5s cap, ±50% jitter.
package httpclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a retrying HTTP client. Fields may be set before first use;
// the zero value uses the defaults documented on each field. A Client
// is safe for concurrent use once configured.
type Client struct {
	// HTTP is the underlying transport client (default
	// http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds total tries, first attempt included
	// (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms): attempt
	// n waits BaseDelay * 2^(n-1), jittered ±50%, capped at MaxDelay —
	// unless the response named a Retry-After, which is honored exactly.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff wait (default 5s). Retry-After
	// values above the cap are honored anyway: the server knows.
	MaxDelay time.Duration

	// Sleep waits for d or until ctx ends (default: timer + ctx).
	// Tests substitute a recording fake to make retry schedules
	// assertable without wall-clock time.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand yields the jitter source in [0, 1) (default math/rand).
	Rand func() float64
}

// retryable reports whether a status code is worth another attempt:
// explicit pushback (429, 503), transient gateway trouble (502, 504).
// Everything else — including other 5xx — is returned to the caller,
// who knows whether the operation is safe to repeat.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 5
}

func (c *Client) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return 100 * time.Millisecond
}

func (c *Client) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 5 * time.Second
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the jittered exponential delay for attempt (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay() << (attempt - 1)
	if d > c.maxDelay() || d <= 0 { // <= 0 guards shift overflow
		d = c.maxDelay()
	}
	r := rand.Float64
	if c.Rand != nil {
		r = c.Rand
	}
	// ±50% jitter: spread synchronized clients apart instead of letting
	// them re-arrive (and re-collide) in lockstep.
	return time.Duration(float64(d) * (0.5 + r()))
}

// ParseRetryAfter interprets a Retry-After header value — either
// delay-seconds or an HTTP-date — as a wait from now. ok is false for
// absent or unparsable values.
func ParseRetryAfter(v string, now time.Time) (d time.Duration, ok bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d, true
		}
		return 0, true // date in the past: retry immediately
	}
	return 0, false
}

// Do sends req, retrying retryable failures (429/502/503/504 and
// transport errors) up to MaxAttempts times. The final response is
// returned whatever its status — callers still check StatusCode; Do
// only decides whether another attempt is worthwhile. Requests with a
// body must have GetBody set (http.NewRequest does this for common
// body types) or the first failure is returned as-is, since the body
// cannot be replayed.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	var lastResp *http.Response
	var lastErr error
	for attempt := 1; ; attempt++ {
		if attempt > 1 && req.Body != nil {
			if req.GetBody == nil {
				break // cannot replay; surface the previous outcome
			}
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("httpclient: replaying request body: %w", err)
			}
			req.Body = body
		}
		resp, err := c.httpClient().Do(req)
		lastResp, lastErr = resp, err
		if err == nil && !retryable(resp.StatusCode) {
			return resp, nil
		}
		if attempt >= c.maxAttempts() {
			break
		}
		delay := c.backoff(attempt)
		if err == nil {
			// The response is replaced by the next attempt: release its
			// connection, and prefer the server's own wait estimate to
			// the blind backoff.
			if ra, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				delay = ra
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	return lastResp, lastErr
}

// PostJSON marshals in, POSTs it to url and decodes a 2xx response body
// into out (when out is non-nil). The status code is returned for any
// HTTP outcome, 0 with an error for transport failures. Non-2xx bodies
// are drained and discarded — the status is the caller's signal.
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) (int, error) {
	data, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSON(req, out)
}

// GetJSON GETs url and decodes a 2xx response body into out (when out
// is non-nil), with the same contract as PostJSON.
func (c *Client) GetJSON(ctx context.Context, url string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	return c.doJSON(req, out)
}

func (c *Client) doJSON(req *http.Request, out any) (int, error) {
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("httpclient: decoding %s: %w", req.URL, err)
		}
	}
	return resp.StatusCode, nil
}
