// Package circuit defines the logical-circuit intermediate representation
// shared by the whole toolchain: gate kinds, quantum programs as ordered
// gate sequences, the data-dependency DAG, and validation. It mirrors the
// gate set of the paper's Scaffold listing (Fig. 5): H, CNOT, the
// single-control multi-target CXX, probabilistic magic-state injection
// (injectT / injectTdag), X-basis measurement, plus Move (state relocation
// braids used by inter-round permutation) and Barrier (the multi-target
// CNOT scheduling fence of §V.A).
package circuit

import "fmt"

// Qubit identifies a logical qubit within a circuit. Qubits are dense
// indices in [0, Circuit.NumQubits).
type Qubit int

// Kind enumerates the gate vocabulary.
type Kind int

// Gate kinds. Two-qubit interactions (CNOT, CXX, InjectT, InjectTdag,
// Move) become braids on the surface-code mesh; the rest are local tile
// operations.
const (
	KindInvalid    Kind = iota
	KindPrepZ           // initialize |0>
	KindPrepX           // initialize |+>
	KindH               // Hadamard
	KindX               // Pauli X
	KindZ               // Pauli Z
	KindS               // phase gate (decomposes to two T's, §II.E)
	KindT               // T rotation (consumes a magic state when fault tolerant)
	KindCNOT            // controlled NOT braid
	KindCXX             // single-control multi-target CNOT braid
	KindInjectT         // probabilistic T-state injection into target
	KindInjectTdag      // adjoint injection
	KindMeasX           // X-basis measurement
	KindMeasZ           // Z-basis measurement
	KindMove            // relocate a logical state to an empty tile (permutation braid)
	KindBarrier         // scheduling fence: multi-target CNOT from a |0> ancilla (§V.A)
)

var kindNames = map[Kind]string{
	KindInvalid:    "invalid",
	KindPrepZ:      "prepz",
	KindPrepX:      "prepx",
	KindH:          "h",
	KindX:          "x",
	KindZ:          "z",
	KindS:          "s",
	KindT:          "t",
	KindCNOT:       "cnot",
	KindCXX:        "cxx",
	KindInjectT:    "injectT",
	KindInjectTdag: "injectTdag",
	KindMeasX:      "measx",
	KindMeasZ:      "measz",
	KindMove:       "move",
	KindBarrier:    "barrier",
}

// String returns the lower-case mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsTwoQubit reports whether the kind interacts two or more qubits and
// therefore requires a braid (or braid tree) on the mesh.
func (k Kind) IsTwoQubit() bool {
	switch k {
	case KindCNOT, KindCXX, KindInjectT, KindInjectTdag, KindMove:
		return true
	}
	return false
}

// IsMeasurement reports whether the kind destroys (measures out) its
// operand, releasing the tile for reuse.
func (k Kind) IsMeasurement() bool { return k == KindMeasX || k == KindMeasZ }

// Gate is one instruction. For CNOT, Control is the control and Targets
// holds the single target. For CXX, Targets holds every target. For
// InjectT/InjectTdag, Control is the raw-state source (NoQubit when the
// raw state is ambient, i.e. freshly injected rather than a prior-round
// output) and Targets[0] is the data qubit. For Move, Control is the
// source qubit and Dest is the destination tile slot qubit id. Barrier
// lists the fenced qubits in Targets.
type Gate struct {
	Kind    Kind
	Control Qubit   // NoQubit when unused
	Targets []Qubit // at least one entry except for Barrier over no qubits
	Dest    Qubit   // Move only: destination slot id (a qubit id reserved for the slot)
	Round   int     // distillation round this gate belongs to (1-based; 0 = unassigned)
	Module  int     // module index within the factory (-1 = none, e.g. barriers)
}

// NoQubit marks an unused qubit operand.
const NoQubit Qubit = -1

// Operands returns every qubit the gate touches, in a deterministic order.
// This is the hazard set used to build dependencies: the paper's simulator
// treats any shared qubit between consecutive instructions as a true
// dependency (§VIII.A).
func (g *Gate) Operands() []Qubit {
	return g.AppendOperands(make([]Qubit, 0, len(g.Targets)+1))
}

// AppendOperands appends the gate's operands to buf in the same order as
// Operands and returns the extended slice. Hot callers (dependency
// analysis, interaction-graph extraction) pass a reused buffer to avoid a
// per-gate allocation.
func (g *Gate) AppendOperands(buf []Qubit) []Qubit {
	if g.Control != NoQubit {
		buf = append(buf, g.Control)
	}
	return append(buf, g.Targets...) // for Move, Targets[0] == Dest
}

// String renders the gate in a compact assembly-like form.
func (g *Gate) String() string {
	switch g.Kind {
	case KindCNOT:
		return fmt.Sprintf("cnot q%d, q%d", g.Control, g.Targets[0])
	case KindCXX:
		return fmt.Sprintf("cxx q%d -> %d targets", g.Control, len(g.Targets))
	case KindInjectT, KindInjectTdag:
		if g.Control == NoQubit {
			return fmt.Sprintf("%s raw, q%d", g.Kind, g.Targets[0])
		}
		return fmt.Sprintf("%s q%d, q%d", g.Kind, g.Control, g.Targets[0])
	case KindMove:
		return fmt.Sprintf("move q%d -> slot%d", g.Control, g.Dest)
	case KindBarrier:
		return fmt.Sprintf("barrier over %d qubits", len(g.Targets))
	default:
		if len(g.Targets) == 1 {
			return fmt.Sprintf("%s q%d", g.Kind, g.Targets[0])
		}
		return fmt.Sprintf("%s over %d qubits", g.Kind, len(g.Targets))
	}
}
