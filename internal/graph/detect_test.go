package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
)

// twoCliques builds two size-n cliques joined by a single bridge edge —
// the canonical community-detection fixture.
func twoCliques(n int) *Graph {
	g := New(2 * n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(n+i, n+j, 1)
		}
	}
	g.AddEdge(0, n, 1) // bridge
	return g
}

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func sameSide(label []int, a, b int) bool { return label[a] == label[b] }

func TestEdgeBetweennessPathGraph(t *testing.T) {
	// On a path of 5 vertices, the middle edge (1-2 or 2-3) carries the
	// most shortest paths: 2-3 carries 3*2=6, 1-2 carries 2*3=6, ends 4.
	g := pathGraph(5)
	bc := EdgeBetweenness(g)
	// Edge order follows AddEdge: (0,1), (1,2), (2,3), (3,4).
	if bc[0] != 4 || bc[3] != 4 {
		t.Errorf("end edges carry %g and %g, want 4 (1*4 pairs)", bc[0], bc[3])
	}
	if bc[1] != 6 || bc[2] != 6 {
		t.Errorf("middle edges carry %g and %g, want 6 (2*3 pairs)", bc[1], bc[2])
	}
}

func TestEdgeBetweennessBridgeDominates(t *testing.T) {
	g := twoCliques(4)
	bc := EdgeBetweenness(g)
	top := TopBetweennessEdges(g, 1)
	e := g.Edges[top[0]]
	if !(e.U == 0 && e.V == 4) {
		t.Errorf("top edge is (%d,%d), want the bridge (0,4)", e.U, e.V)
	}
	// The bridge carries all 16 cross-clique pairs.
	if bc[top[0]] != 16 {
		t.Errorf("bridge betweenness = %g, want 16", bc[top[0]])
	}
}

func TestEdgeBetweennessEmptyAndSingleton(t *testing.T) {
	if got := EdgeBetweenness(New(0)); len(got) != 0 {
		t.Errorf("empty graph produced %d entries", len(got))
	}
	if got := EdgeBetweenness(New(3)); len(got) != 0 {
		t.Errorf("edgeless graph produced %d entries", len(got))
	}
}

func TestGirvanNewmanSplitsCliques(t *testing.T) {
	g := twoCliques(5)
	label, count := GirvanNewman(g, 0)
	if count != 2 {
		t.Fatalf("found %d communities, want 2", count)
	}
	for i := 1; i < 5; i++ {
		if !sameSide(label, 0, i) {
			t.Errorf("clique A split: vertices 0 and %d differ", i)
		}
		if !sameSide(label, 5, 5+i) {
			t.Errorf("clique B split: vertices 5 and %d differ", 5+i)
		}
	}
	if sameSide(label, 0, 5) {
		t.Error("cliques merged")
	}
	if q := Modularity(g, label); q < 0.3 {
		t.Errorf("modularity = %g, want > 0.3 for clean split", q)
	}
}

func TestGirvanNewmanRemovalCap(t *testing.T) {
	g := twoCliques(4)
	// With zero allowed removals the best partition is the whole graph.
	label, count := GirvanNewman(g, -1)
	if count < 1 {
		t.Errorf("count = %d", count)
	}
	_ = label
}

func TestFiedlerVectorOrthogonalToOnes(t *testing.T) {
	g := twoCliques(4)
	fv := FiedlerVector(g, 0)
	var sum, norm float64
	for _, x := range fv {
		sum += x
		norm += x * x
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("Fiedler vector has constant component %g", sum)
	}
	if math.Abs(norm-1) > 1e-6 {
		t.Errorf("Fiedler vector norm^2 = %g, want 1", norm)
	}
}

func TestFiedlerVectorSeparatesCliques(t *testing.T) {
	g := twoCliques(5)
	fv := FiedlerVector(g, 0)
	// All of clique A should share a sign, opposite to clique B.
	for i := 1; i < 5; i++ {
		if fv[0]*fv[i] <= 0 {
			t.Errorf("clique A signs differ: fv[0]=%g fv[%d]=%g", fv[0], i, fv[i])
		}
		if fv[5]*fv[5+i] <= 0 {
			t.Errorf("clique B signs differ: fv[5]=%g fv[%d]=%g", fv[5], 5+i, fv[5+i])
		}
	}
	if fv[0]*fv[5] >= 0 {
		t.Error("cliques share a sign")
	}
}

func TestFiedlerVectorTinyGraphs(t *testing.T) {
	if fv := FiedlerVector(New(0), 0); len(fv) != 0 {
		t.Error("non-empty vector for empty graph")
	}
	if fv := FiedlerVector(New(1), 0); len(fv) != 1 || fv[0] != 0 {
		t.Errorf("singleton vector = %v, want [0]", fv)
	}
}

func TestSpectralBisectBalanced(t *testing.T) {
	g := twoCliques(5)
	label := SpectralBisect(g)
	zero := 0
	for _, l := range label {
		if l == 0 {
			zero++
		}
	}
	if zero != 5 {
		t.Errorf("side 0 has %d vertices, want 5", zero)
	}
	for i := 1; i < 5; i++ {
		if !sameSide(label, 0, i) || !sameSide(label, 5, 5+i) {
			t.Fatalf("bisection does not respect cliques: %v", label)
		}
	}
}

func TestSpectralCommunitiesCounts(t *testing.T) {
	g := twoCliques(4)
	label, count := SpectralCommunities(g, 2)
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	if len(label) != g.N {
		t.Errorf("label length %d, want %d", len(label), g.N)
	}
	if _, c := SpectralCommunities(New(0), 4); c != 0 {
		t.Errorf("empty graph count = %d", c)
	}
	if _, c := SpectralCommunities(g, 1); c != 1 {
		t.Errorf("k=1 count = %d", c)
	}
}

func TestWalkProfilesAreDistributions(t *testing.T) {
	g := twoCliques(4)
	rows := WalkProfiles(g, 3)
	for v, row := range rows {
		var s float64
		for _, p := range row {
			if p < -1e-12 {
				t.Fatalf("negative probability %g", p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %g, want 1", v, s)
		}
	}
}

func TestWalkProfilesIsolatedVertexHoldsMass(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	rows := WalkProfiles(g, 4)
	if rows[2][2] != 1 {
		t.Errorf("isolated vertex mass = %g, want 1", rows[2][2])
	}
}

func TestRandomWalkCommunitiesSplitsCliques(t *testing.T) {
	g := twoCliques(5)
	label, count := RandomWalkCommunities(g, 0)
	if count != 2 {
		t.Fatalf("found %d communities, want 2 (label=%v)", count, label)
	}
	if sameSide(label, 0, 5) {
		t.Error("cliques merged")
	}
}

func TestRandomWalkCommunitiesEmpty(t *testing.T) {
	if _, c := RandomWalkCommunities(New(0), 0); c != 0 {
		t.Errorf("empty graph count = %d", c)
	}
}

func TestCommunityMethodsAgreeOnCliquePair(t *testing.T) {
	g := twoCliques(5)
	for _, m := range CommunityMethods(2) {
		label, count := m.Detect(g)
		if len(label) != g.N {
			t.Errorf("%s: label length %d", m.Name, len(label))
			continue
		}
		if m.Name == "label-propagation" {
			// Label propagation famously collapses clique pairs joined
			// by a bridge; only require a valid partition of it.
			if count < 1 {
				t.Errorf("%s: count = %d", m.Name, count)
			}
			continue
		}
		if count < 2 {
			t.Errorf("%s: %d communities, want >= 2", m.Name, count)
			continue
		}
		if q := Modularity(g, label); q < 0.25 {
			t.Errorf("%s: modularity %g below 0.25", m.Name, q)
		}
	}
}

func TestCommunityMethodsOnFactoryGraph(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	g := FromCircuit(f.Circuit)
	for _, m := range CommunityMethods(14) {
		if m.Name == "girvan-newman" || m.Name == "random-walk" {
			continue // quadratic methods; exercised on small fixtures above
		}
		label, count := m.Detect(g)
		if count < 2 {
			t.Errorf("%s: found %d communities on a 14-module factory", m.Name, count)
		}
		seen := make(map[int]bool)
		for _, l := range label {
			if l < 0 || l >= count {
				t.Fatalf("%s: label %d out of range [0,%d)", m.Name, l, count)
			}
			seen[l] = true
		}
		if len(seen) != count {
			t.Errorf("%s: %d distinct labels for count %d", m.Name, len(seen), count)
		}
	}
}

func TestSortedCommunitySizes(t *testing.T) {
	sizes := SortedCommunitySizes([]int{0, 1, 1, 2, 1}, 3)
	if sizes[0] != 3 || sizes[1] != 1 || sizes[2] != 1 {
		t.Errorf("sizes = %v, want [3 1 1]", sizes)
	}
}

// Property: every detection method returns dense labels covering all
// vertices on random connected graphs.
func TestDetectionPropertyDenseLabels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 6
		g := New(n)
		// Random spanning tree keeps it connected; extra random edges.
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v), 1)
		}
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, 1+rng.Float64())
			}
		}
		for _, m := range CommunityMethods(3) {
			label, count := m.Detect(g)
			if len(label) != n || count < 1 {
				return false
			}
			seen := make(map[int]bool)
			for _, l := range label {
				if l < 0 || l >= count {
					return false
				}
				seen[l] = true
			}
			if len(seen) != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: total edge betweenness equals the total number of shortest
// path pairs weighted by path length... more simply, on a tree every pair
// contributes its full path, so the sum of edge betweenness equals the
// sum of pairwise distances.
func TestBetweennessPropertyTreeDistanceSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		g := New(n)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
			g.AddEdge(v, parent[v], 1)
		}
		bc := EdgeBetweenness(g)
		var total float64
		for _, b := range bc {
			total += b
		}
		// Pairwise distances via BFS from every vertex.
		var distSum float64
		for s := 0; s < n; s++ {
			dist := bfsDist(g, s)
			for v := s + 1; v < n; v++ {
				distSum += float64(dist[v])
			}
		}
		return math.Abs(total-distSum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func bfsDist(g *Graph, s int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Neighbors(v, func(u int, _ float64) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		})
	}
	return dist
}
