// Package assign implements minimum-cost bipartite assignment (the
// Hungarian algorithm). Hierarchical stitching's port-reassignment step
// (§VII.B.2 of the paper) uses it: within a group, each previous-round
// module's k output ports must be matched one-to-one with the k next-round
// modules so that total permutation braid distance is minimized.
package assign

import (
	"errors"
	"math"
)

// ErrShape is returned for non-square or empty cost matrices.
var ErrShape = errors.New("assign: cost matrix must be square and non-empty")

// Hungarian solves the n×n minimum-cost assignment problem. cost[i][j] is
// the cost of assigning row i to column j. It returns match, where
// match[i] = j means row i is assigned column j, along with the total cost.
// The implementation is the O(n³) shortest augmenting path formulation
// (Jonker-Volgenant style potentials).
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, ErrShape
	}
	for _, row := range cost {
		if len(row) != n {
			return nil, 0, ErrShape
		}
	}

	// Potentials u (rows) and v (columns), and way/matchCol bookkeeping.
	// Arrays are 1-indexed internally; index 0 is a sentinel.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	matchCol := make([]int, n+1) // matchCol[j] = row matched to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	match := make([]int, n)
	var total float64
	for j := 1; j <= n; j++ {
		if matchCol[j] > 0 {
			match[matchCol[j]-1] = j - 1
			total += cost[matchCol[j]-1][j-1]
		}
	}
	return match, total, nil
}

// Greedy solves the same problem approximately by repeatedly taking the
// globally cheapest unassigned (row, column) pair. It is used as a
// cross-check in tests and as a fast fallback for very large instances.
func Greedy(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, ErrShape
	}
	for _, row := range cost {
		if len(row) != n {
			return nil, 0, ErrShape
		}
	}
	match := make([]int, n)
	rowDone := make([]bool, n)
	colDone := make([]bool, n)
	var total float64
	for step := 0; step < n; step++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if rowDone[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if colDone[j] {
					continue
				}
				if cost[i][j] < best {
					bi, bj, best = i, j, cost[i][j]
				}
			}
		}
		rowDone[bi], colDone[bj] = true, true
		match[bi] = bj
		total += best
	}
	return match, total, nil
}
