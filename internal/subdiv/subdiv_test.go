package subdiv

import (
	"testing"
	"testing/quick"

	"magicstate/internal/circuit"
	"magicstate/internal/circuits"
	"magicstate/internal/mesh"
)

func hierarchical(t *testing.T, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuits.HierarchicalRandom(circuits.HierarchicalOptions{
		Blocks: 3, QubitsPerBlock: 6, Phases: 3,
		IntraCNOTs: 10, BridgeCNOTs: 3, Barriers: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStitchRejectsBadInput(t *testing.T) {
	if _, err := Stitch(circuit.New(0), Options{}); err == nil {
		t.Error("empty circuit accepted")
	}
	c := circuit.New(2)
	c.CNOT(0, 1)
	c.Move(0, 1)
	if _, err := Stitch(c, Options{}); err == nil {
		t.Error("input with Move accepted")
	}
}

func TestStitchPreservesGateSequence(t *testing.T) {
	c := hierarchical(t, 3)
	res, err := Stitch(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every input gate appears in order; inserted gates are Moves only.
	var kinds []circuit.Kind
	for i := range res.Circuit.Gates {
		if res.Circuit.Gates[i].Kind != circuit.KindMove {
			kinds = append(kinds, res.Circuit.Gates[i].Kind)
		}
	}
	if len(kinds) != len(c.Gates) {
		t.Fatalf("stitched circuit has %d non-move gates, input has %d", len(kinds), len(c.Gates))
	}
	for i := range c.Gates {
		if kinds[i] != c.Gates[i].Kind {
			t.Fatalf("gate %d kind %v, want %v", i, kinds[i], c.Gates[i].Kind)
		}
	}
	if got, want := len(res.Circuit.Gates)-len(c.Gates), res.Moves; got != want {
		t.Errorf("inserted %d gates, reported Moves = %d", got, want)
	}
}

func TestStitchCutsAtBarriers(t *testing.T) {
	c := hierarchical(t, 5) // 3 phases, 2 barriers
	res, err := Stitch(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Errorf("windows = %d, want 3 (cut at each barrier)", len(res.Windows))
	}
	// Windows tile the gate sequence.
	at := 0
	for _, w := range res.Windows {
		if w.Start != at {
			t.Fatalf("window starts at %d, want %d", w.Start, at)
		}
		if w.End <= w.Start {
			t.Fatalf("empty window %+v", w)
		}
		at = w.End
	}
	if at != len(c.Gates) {
		t.Errorf("windows end at %d, circuit has %d gates", at, len(c.Gates))
	}
}

func TestStitchWindowCountWithoutBarriers(t *testing.T) {
	c, err := circuits.RandomCliffordT(10, 60, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Stitch(c, Options{Windows: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) < 4 || len(res.Windows) > 6 {
		t.Errorf("windows = %d, want about 5", len(res.Windows))
	}
}

func TestStitchMoveBudgetRespected(t *testing.T) {
	c := hierarchical(t, 7)
	opt := Options{Seed: 1, MoveBudget: 3}
	res, err := Stitch(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := len(res.Windows) - 1
	if res.Moves > boundaries*opt.MoveBudget {
		t.Errorf("moves = %d exceed budget %d over %d boundaries",
			res.Moves, opt.MoveBudget, boundaries)
	}
}

func TestStitchedCircuitSimulates(t *testing.T) {
	c := hierarchical(t, 9)
	res, err := Stitch(c, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mesh.Simulate(res.Circuit, res.Placement, mesh.Config{RecordPaths: true})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if sim.Latency <= 0 {
		t.Error("zero latency")
	}
	if err := sim.CheckNoOverlaps(); err != nil {
		t.Errorf("overlap invariant: %v", err)
	}
}

func TestStitchBeatsGlobalOnPhaseStructuredCircuit(t *testing.T) {
	// Aggregate over a few seeds: the stitched mapping should win (or
	// tie within noise) on latency against the single global embedding
	// on circuits whose interaction pattern shifts between phases.
	var stitched, global int
	for seed := int64(1); seed <= 3; seed++ {
		c := hierarchical(t, seed)
		res, err := Stitch(c, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		simS, err := mesh.Simulate(res.Circuit, res.Placement, mesh.Config{})
		if err != nil {
			t.Fatal(err)
		}
		pg := GlobalEmbed(c, seed)
		simG, err := mesh.Simulate(c, pg, mesh.Config{})
		if err != nil {
			t.Fatal(err)
		}
		stitched += simS.Latency
		global += simG.Latency
	}
	// Moves cost cycles, so demand no worse than a modest overhead, not
	// strict dominance (three seeds is a smoke check, not a benchmark).
	if float64(stitched) > 1.25*float64(global) {
		t.Errorf("stitched latency %d much worse than global %d", stitched, global)
	}
	t.Logf("stitched=%d global=%d", stitched, global)
}

func TestGlobalEmbedValid(t *testing.T) {
	c, err := circuits.QFTLike(8)
	if err != nil {
		t.Fatal(err)
	}
	pl := GlobalEmbed(c, 1)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.N() != c.NumQubits {
		t.Errorf("placement covers %d qubits, want %d", pl.N(), c.NumQubits)
	}
}

// Property: stitching random circuits always yields a valid circuit and
// placement, windows tile the input, and non-move gate counts match.
func TestStitchPropertyValid(t *testing.T) {
	f := func(seed int64, szRaw, winRaw uint8) bool {
		n := int(szRaw%8) + 4
		wins := int(winRaw%4) + 2
		c, err := circuits.RandomCliffordT(n, 8*n, 0.2, seed)
		if err != nil {
			return false
		}
		res, err := Stitch(c, Options{Windows: wins, Seed: seed})
		if err != nil {
			return false
		}
		if res.Circuit.Validate() != nil || res.Placement.Validate() != nil {
			return false
		}
		nonMove := 0
		for i := range res.Circuit.Gates {
			if res.Circuit.Gates[i].Kind != circuit.KindMove {
				nonMove++
			}
		}
		if nonMove != len(c.Gates) {
			return false
		}
		at := 0
		for _, w := range res.Windows {
			if w.Start != at || w.End <= w.Start {
				return false
			}
			at = w.End
		}
		return at == len(c.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
