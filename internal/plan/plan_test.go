package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"magicstate/internal/resource"
)

func baseReq() Requirements {
	return Requirements{
		TCount:      1e9,
		ErrorBudget: 0.01,
		DemandRate:  0.02,
	}
}

func TestPlanMeetsTarget(t *testing.T) {
	prov, err := Plan(baseReq())
	if err != nil {
		t.Fatal(err)
	}
	if prov.OutputError > prov.TargetPerState {
		t.Errorf("output error %g above target %g", prov.OutputError, prov.TargetPerState)
	}
	if prov.Factories < 1 || prov.BatchLatency <= 0 || prov.PhysicalQubits <= 0 {
		t.Errorf("degenerate provision: %+v", prov)
	}
	if prov.SuccessProb <= 0 || prov.SuccessProb > 1 {
		t.Errorf("success prob %g", prov.SuccessProb)
	}
	if prov.RawStates < prov.TCountLowerBound() {
		t.Errorf("raw states %g below lossless floor %g", prov.RawStates, prov.TCountLowerBound())
	}
	if !strings.Contains(prov.String(), "factories") {
		t.Error("String() missing farm size")
	}
}

// TCountLowerBound is a test helper: raw states can never be fewer than
// inputs/capacity per T gate.
func (p *Provision) TCountLowerBound() float64 {
	return 1e9 / float64(p.Params.Capacity()) * float64(p.Params.Inputs())
}

func TestPlanThroughputScaling(t *testing.T) {
	slow := baseReq()
	slow.DemandRate = 0.001
	fast := baseReq()
	fast.DemandRate = 0.1
	ps, err := Plan(slow)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Plan(fast)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Factories <= ps.Factories {
		t.Errorf("100x demand did not grow the farm: %d vs %d", pf.Factories, ps.Factories)
	}
}

func TestPlanTighterBudgetNeedsMoreLevels(t *testing.T) {
	// Targets of 1e-6 vs 1e-12 per state; tighter should need deeper
	// recursion. (Much tighter targets, e.g. 1e-15, are correctly
	// rejected: a 4-level factory's whole-batch success probability is
	// effectively zero under the first-order all-modules-pass model.)
	loose := baseReq()
	loose.TCount = 1e4
	tight := baseReq()
	tight.TCount = 1e10
	pl, err := Plan(loose)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Plan(tight)
	if err != nil {
		t.Fatal(err)
	}
	if pt.OutputError >= pl.TargetPerState {
		t.Errorf("tight plan error %g not below loose target %g", pt.OutputError, pl.TargetPerState)
	}
	if pt.Params.Levels < pl.Params.Levels {
		t.Errorf("tighter budget used fewer levels: %d vs %d", pt.Params.Levels, pl.Params.Levels)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := baseReq()
	bad.TCount = 0
	if _, err := Plan(bad); err == nil {
		t.Error("TCount=0 accepted")
	}
	bad = baseReq()
	bad.ErrorBudget = 2
	if _, err := Plan(bad); err == nil {
		t.Error("ErrorBudget=2 accepted")
	}
	bad = baseReq()
	bad.DemandRate = 0
	if _, err := Plan(bad); err == nil {
		t.Error("DemandRate=0 accepted")
	}
	bad = baseReq()
	bad.Headroom = 0.5
	if _, err := Plan(bad); err == nil {
		t.Error("Headroom<1 accepted")
	}
}

func TestPlanUnreachableTarget(t *testing.T) {
	req := baseReq()
	// Inject error so hot that distillation diverges for every k.
	req.Errors = resource.ErrorModel{PhysError: 1e-3, InjectError: 0.2, Threshold: 1e-2}
	if _, err := Plan(req); err == nil {
		t.Error("divergent working point produced a plan")
	}
}

func TestPlanUsesCandidateKs(t *testing.T) {
	req := baseReq()
	req.CandidateKs = []int{2}
	prov, err := Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if prov.Params.K != 2 {
		t.Errorf("planner chose K=%d outside the candidate set", prov.Params.K)
	}
}

// Property: for any sane demand and budget, the plan meets its error
// target with a positive farm, and physical qubits scale with factories.
func TestPlanPropertySound(t *testing.T) {
	f := func(tExp, dExp uint8) bool {
		tc := math10(int(tExp%8) + 4)     // 1e4 .. 1e11
		dr := 1.0 / math10(int(dExp%3)+1) // 0.1 .. 0.001
		req := Requirements{TCount: tc, ErrorBudget: 0.01, DemandRate: dr}
		prov, err := Plan(req)
		if err != nil {
			return false
		}
		if prov.OutputError > prov.TargetPerState {
			return false
		}
		return prov.Factories >= 1 && prov.PhysicalQubits >= prov.Factories
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func math10(e int) float64 {
	r := 1.0
	for i := 0; i < e; i++ {
		r *= 10
	}
	return r
}
