// Package protocols models the magic-state distillation protocol zoo the
// paper situates itself against (§III): the original Bravyi-Kitaev 15→1
// protocol [22], the Bravyi-Haah (3k+8)→k block protocol [18] the paper
// builds factories from, Jones-style multilevel recursion [21], and the
// asymptotically input-optimal Haah-Hastings family [23]. Each protocol
// reports its input/output ratio, logical-qubit footprint, error
// suppression and first-order success probability, so the planner in
// compare.go can answer the question the related-work section raises:
// given an injected error rate and a target output fidelity, how many raw
// states and how much space-time does each protocol family spend per
// distilled state?
package protocols

import (
	"fmt"
	"math"
)

// Protocol is one n→k distillation unit.
type Protocol interface {
	// Name is a short human-readable identifier ("BK 15-to-1").
	Name() string
	// Inputs returns n, the number of raw (or previous-level) magic
	// states one run consumes.
	Inputs() int
	// Outputs returns k, the number of distilled states one successful
	// run produces.
	Outputs() int
	// Qubits returns the number of logical qubits a module of the
	// protocol occupies while running (inputs + ancillas + outputs).
	Qubits() int
	// OutputError returns the error rate of output states when every
	// input state carries error eps (leading order).
	OutputError(eps float64) float64
	// SuccessProbability returns the probability that the run's
	// syndrome checks pass, to first order in eps. The result is
	// clamped to [0, 1].
	SuccessProbability(eps float64) float64
}

// clamp01 clips p into [0, 1]; first-order success expansions go negative
// for large eps and the planner treats that as "never succeeds".
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Multilevel recursively composes a base protocol with itself L times in
// the block-code style of §II.G and [21]: level r consumes the outputs of
// level r−1, with each level-r module drawing at most one state from any
// level-(r−1) module to avoid correlated errors. The composite behaves as
// an Inputs()^L → Outputs()^L protocol.
type Multilevel struct {
	Base   Protocol
	Levels int
}

// NewMultilevel validates and builds a multilevel composition.
func NewMultilevel(base Protocol, levels int) (Multilevel, error) {
	if base == nil {
		return Multilevel{}, fmt.Errorf("protocols: nil base protocol")
	}
	if levels < 1 {
		return Multilevel{}, fmt.Errorf("protocols: levels must be >= 1, got %d", levels)
	}
	return Multilevel{Base: base, Levels: levels}, nil
}

// Name identifies the composition.
func (m Multilevel) Name() string {
	return fmt.Sprintf("%s ^%d", m.Base.Name(), m.Levels)
}

// Inputs returns n^L.
func (m Multilevel) Inputs() int { return ipow(m.Base.Inputs(), m.Levels) }

// Outputs returns k^L.
func (m Multilevel) Outputs() int { return ipow(m.Base.Outputs(), m.Levels) }

// Qubits returns the footprint of the widest level. Level r runs
// n^(L−r)·k^(r−1) modules of the base protocol concurrently (§II.G); the
// first level is always the widest because n > k for any distillation
// protocol worth running.
func (m Multilevel) Qubits() int {
	widest := 0
	for r := 1; r <= m.Levels; r++ {
		modules := ipow(m.Base.Inputs(), m.Levels-r) * ipow(m.Base.Outputs(), r-1)
		if q := modules * m.Base.Qubits(); q > widest {
			widest = q
		}
	}
	return widest
}

// OutputError iterates the base suppression L times.
func (m Multilevel) OutputError(eps float64) float64 {
	for i := 0; i < m.Levels; i++ {
		eps = m.Base.OutputError(eps)
	}
	return eps
}

// SuccessProbability multiplies the per-module success probabilities of
// every module in every level, feeding each level the (improved) error
// rate exiting the previous one.
func (m Multilevel) SuccessProbability(eps float64) float64 {
	p := 1.0
	for r := 1; r <= m.Levels; r++ {
		modules := ipow(m.Base.Inputs(), m.Levels-r) * ipow(m.Base.Outputs(), r-1)
		pm := m.Base.SuccessProbability(eps)
		p *= math.Pow(pm, float64(modules))
		eps = m.Base.OutputError(eps)
	}
	return clamp01(p)
}

// RawPerOutput returns the number of raw input states consumed per
// distilled output state, ignoring failures (the protocol's inverse rate
// n^L / k^L).
func RawPerOutput(p Protocol) float64 {
	return float64(p.Inputs()) / float64(p.Outputs())
}

// ExpectedRawPerOutput folds in the first-order failure probability: a
// failed run consumes its inputs and produces nothing, so the expected
// raw cost per output is (n/k) / P_success.
func ExpectedRawPerOutput(p Protocol, eps float64) float64 {
	ps := p.SuccessProbability(eps)
	if ps <= 0 {
		return math.Inf(1)
	}
	return RawPerOutput(p) / ps
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
