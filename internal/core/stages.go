package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/qasm"
	"magicstate/internal/resource"
	"magicstate/internal/scaffold"
	"magicstate/internal/stitch"
	"magicstate/internal/workload"
)

// Stage identifies one cacheable slice of the pipeline. The pipeline is
// a short DAG — build feeds placement feeds simulation feeds report
// assembly — and each of the three compute-bearing stages produces a
// serializable artifact a caching tier can persist and replay
// (assembly is arithmetic over the others' outputs and is never cached
// on its own). The numeric values are durable: they frame stage
// records on disk (see internal/store), so they must never be
// renumbered — add new stages at the end.
type Stage uint8

const (
	// StageBuild generates the factory circuit: bravyi.Build for the
	// flat strategies, stitch.Build (which also fixes the placement)
	// for hierarchical stitching.
	StageBuild Stage = 1
	// StagePlace maps the factory onto the grid under the non-stitching
	// strategies.
	StagePlace Stage = 2
	// StageSim executes the mapped circuit on the cycle-accurate mesh.
	StageSim Stage = 3
)

var stageNames = map[Stage]string{
	StageBuild: "build",
	StagePlace: "place",
	StageSim:   "sim",
}

// String returns the short stage label used in keys, stats and logs.
func (s Stage) String() string {
	if n, ok := stageNames[s]; ok {
		return n
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages lists every cacheable stage in pipeline order.
func Stages() []Stage { return []Stage{StageBuild, StagePlace, StageSim} }

// BuildArtifact is the output of StageBuild: the generated factory and,
// for hierarchical stitching only (where building and placing are one
// fused optimization), the placement it fixed. Artifacts are shared
// across pipeline runs by the caching tiers and must be treated as
// read-only by every consumer.
type BuildArtifact struct {
	Factory *bravyi.Factory
	// Placement is non-nil exactly for StrategyStitch builds.
	Placement *layout.Placement
}

// PlaceArtifact is the output of StagePlace. Sim is non-nil only when
// the placement search already executed the winning candidate in
// simulation (the force-directed mapper evaluates candidates that
// way); it is a freshness-only byproduct — the durable form of a
// PlaceArtifact keeps just the placement, and a replayed artifact
// recomputes the simulation deterministically in StageSim.
type PlaceArtifact struct {
	Placement *layout.Placement
	Sim       *mesh.Result
}

// CostModelOf resolves cfg's gate cost model (zero value = defaults).
func CostModelOf(cfg Config) resource.CostModel {
	if cfg.Cost == (resource.CostModel{}) {
		return resource.DefaultCost()
	}
	return cfg.Cost
}

// MeshConfigOf resolves the simulator configuration cfg implies — the
// exact mesh.Config the monolithic pipeline has always built, exposed
// so staged callers construct an identical one.
func MeshConfigOf(cfg Config) mesh.Config {
	return mesh.Config{
		Cost: CostModelOf(cfg), Mode: cfg.MeshMode, RouteMargin: cfg.RouteMargin,
		Style: cfg.Style, Distance: cfg.Distance, RecordPaths: cfg.RecordPaths,
		Defects: cfg.Defects,
	}
}

// BuildStage runs the factory/circuit build stage: parameter validation
// plus bravyi.Build, or stitch.Build for StrategyStitch (whose result
// carries the placement too, making StagePlace a pass-through). A
// frontend workload (qasm import, scaffold compile, random generation)
// replaces the factory build entirely: the compiled circuit is wrapped
// in a synthetic round-less factory the placement and simulation stages
// consume unchanged.
func BuildStage(ctx context.Context, cfg Config) (*BuildArtifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Workload != "" {
		if cfg.Strategy == StrategyStitch {
			return nil, fmt.Errorf("core: hierarchical stitching needs the built-in factory's round structure; workload %q has none", cfg.Workload)
		}
		c, err := buildWorkloadCircuit(cfg)
		if err != nil {
			return nil, err
		}
		return &BuildArtifact{Factory: &bravyi.Factory{Circuit: c}}, nil
	}
	params := bravyi.Params{K: cfg.K, Levels: cfg.Levels, Reuse: cfg.Reuse, Barriers: !cfg.NoBarriers}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy == StrategyStitch {
		sopt := cfg.Stitch
		sopt.Seed = cfg.Seed
		sopt.Reuse = cfg.Reuse
		sopt.NoBarriers = cfg.NoBarriers
		res, err := stitch.Build(params, sopt)
		if err != nil {
			return nil, err
		}
		return &BuildArtifact{Factory: res.Factory, Placement: res.Placement}, nil
	}
	f, err := bravyi.Build(params)
	if err != nil {
		return nil, err
	}
	return &BuildArtifact{Factory: f}, nil
}

// PlaceStage runs the placement stage on a build artifact. For
// stitching the placement was fixed by the build; every other strategy
// maps here. On a defective mesh, any qubit a mapper put on a dead tile
// is deterministically relocated to the nearest healthy one — for
// stitch the shared build artifact is cloned first, since artifacts are
// read-only across cache tiers. The context check at entry is the
// pipeline's post-build cancellation boundary.
func PlaceStage(ctx context.Context, cfg Config, b *BuildArtifact) (*PlaceArtifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dm, err := layout.ParseDefects(cfg.Defects)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Strategy == StrategyStitch {
		pl := b.Placement
		if dm.Len() > 0 {
			pl = pl.Clone()
			if err := layout.AvoidDefects(pl, dm); err != nil {
				return nil, err
			}
		}
		return &PlaceArtifact{Placement: pl}, nil
	}
	pl, sim, err := place(cfg, b.Factory, MeshConfigOf(cfg))
	if err != nil {
		return nil, err
	}
	// The force-directed mapper relocates inside its own (memoized)
	// candidate evaluation so its simulation matches its placement;
	// every other mapper returns a fresh placement we fix up here.
	if cfg.Strategy != StrategyForceDirected {
		if err := layout.AvoidDefects(pl, dm); err != nil {
			return nil, err
		}
	}
	return &PlaceArtifact{Placement: pl, Sim: sim}, nil
}

// SimStage runs the routing/simulation stage. When the placement stage
// already simulated the winning candidate (p.Sim non-nil) that result
// is the stage's output; otherwise the mapped circuit executes on the
// mesh. The context check at entry is the pipeline's post-placement
// cancellation boundary: placement dominates annealed strategies, so an
// abandoned caller must be noticed here, not just before placement.
func SimStage(ctx context.Context, cfg Config, b *BuildArtifact, p *PlaceArtifact) (*mesh.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.Sim != nil {
		return p.Sim, nil
	}
	return mesh.Simulate(b.Factory.Circuit, p.Placement, MeshConfigOf(cfg))
}

// permLatencyFailures counts permutation-window computations that
// failed during report assembly. The window is derived from the
// factory's round structure and the simulation's per-gate timing; a
// failure means those two disagree (a stage-cache bug serving a
// mismatched artifact, or a malformed factory) and must be observable
// rather than silently reported as a zero window.
var permLatencyFailures atomic.Int64

// PermLatencyFailures reports how many permutation-window computations
// have failed process-wide. A healthy pipeline never increments it.
func PermLatencyFailures() int64 { return permLatencyFailures.Load() }

// Assemble derives the report from the three stage artifacts: scalar
// outcomes from the simulation, the dependency-limited lower bound from
// the cost model, and the round-2 permutation window for multi-level
// runs. It is pure arithmetic — cheap enough that it is never cached.
func Assemble(cfg Config, b *BuildArtifact, p *PlaceArtifact, sim *mesh.Result) *Report {
	cm := CostModelOf(cfg)
	rep := &Report{
		Config:          cfg,
		Strategy:        cfg.Strategy.String(),
		Latency:         sim.Latency,
		Area:            sim.Area,
		Volume:          float64(sim.Latency) * float64(sim.Area),
		CriticalLatency: cm.CriticalPath(b.Factory.Circuit),
		Stalls:          sim.Stalls,
		Factory:         b.Factory,
		Placement:       p.Placement,
		Sim:             sim,
	}
	rep.CriticalVolume = float64(rep.CriticalLatency) * float64(rep.Area)
	if cfg.Levels >= 2 {
		if perm, err := stitch.PermutationLatency(b.Factory, sim.Start, sim.End, 2); err != nil {
			permLatencyFailures.Add(1)
		} else {
			rep.PermLatency = perm
		}
	}
	return rep
}

// place maps the factory under every non-stitching strategy. When the
// strategy already evaluated its winning candidate in simulation (force
// directed), the simulation result is returned alongside the placement
// so the simulation stage does not repeat it.
func place(cfg Config, f *bravyi.Factory, mcfg mesh.Config) (*layout.Placement, *mesh.Result, error) {
	switch cfg.Strategy {
	case StrategyRandom:
		return layout.Random(f.Circuit.NumQubits, rand.New(rand.NewSource(cfg.Seed))), nil, nil
	case StrategyLinear:
		return initialPlacement(f), nil, nil
	case StrategyForceDirected:
		return placeFD(cfg, f, mcfg)
	case StrategyGraphPartition:
		g := graph.FromCircuit(f.Circuit)
		return partitionEmbed(g, cfg.Seed), nil, nil
	}
	return nil, nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
}

// initialPlacement is the "linear" starting point for a factory: the
// hand-optimized single-row mapping when the factory has round
// structure, a row-major near-square grid for the synthetic round-less
// factories frontend workloads build (layout.Linear walks rounds and
// would place nothing).
func initialPlacement(f *bravyi.Factory) *layout.Placement {
	if len(f.Rounds) > 0 {
		return layout.Linear(f)
	}
	n := f.Circuit.NumQubits
	w, _ := layout.GridFor(n, 1)
	p := layout.NewPlacement(n, w, (n+w-1)/w)
	for q, pt := range layout.RowMajorTiles(n, w) {
		p.Set(q, pt)
	}
	return p
}

// buildWorkloadCircuit dispatches cfg.Workload to its frontend.
func buildWorkloadCircuit(cfg Config) (*circuit.Circuit, error) {
	return CompileWorkload(cfg.Workload, cfg.WorkloadSource, cfg.Seed)
}

// CompileWorkload compiles a frontend workload input to a validated
// circuit. Every frontend validates its circuit before returning it, so
// callers get a well-formed circuit or a structured error — this is the
// boundary the HTTP and CLI surfaces call to reject bad inputs up
// front, before any pipeline compute is admitted.
func CompileWorkload(kind, source string, seed int64) (*circuit.Circuit, error) {
	switch kind {
	case "qasm":
		return qasm.Compile(source)
	case "scaffold":
		return scaffold.Compile(source)
	case "random":
		return workload.GenerateString(source, seed)
	}
	return nil, fmt.Errorf("core: unknown workload %q (want qasm, scaffold or random)", kind)
}
