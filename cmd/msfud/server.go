package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"magicstate"
	"magicstate/internal/fabric"
	"magicstate/internal/presets"
)

// maxRequestBody bounds every /v1 JSON body. The largest legitimate
// request — a 4096-point explicit batch — fits in a fraction of this;
// anything bigger is a client bug or an attack, rejected before it can
// balloon the decoder.
const maxRequestBody = 1 << 20

// drainRetryAfterSeconds is the Retry-After advertised with 503s while
// the service drains for shutdown: long enough for a restart or a load
// balancer failover, short enough that clients come back.
const drainRetryAfterSeconds = 5

// serverConfig carries the service's robustness budget from flags to
// the handler stack.
type serverConfig struct {
	// MaxParallel caps the sweep workers any single request may use.
	MaxParallel int
	// MaxPoints bounds a single batch request's grid expansion.
	MaxPoints int
	// MaxInflight and MaxQueue size the admission budget: at most
	// MaxInflight compute-carrying requests execute at once, at most
	// MaxQueue more wait, and the rest answer 429 + Retry-After.
	MaxInflight int
	MaxQueue    int
	// Rate and Burst configure the per-client token bucket (requests
	// per second and bucket size, keyed by remote address). Rate <= 0
	// disables rate limiting.
	Rate  float64
	Burst float64
	// RequestTimeout bounds one synchronous request's total service
	// time (queue wait + compute); zero means no deadline. The deadline
	// propagates as a context through the sweep engine into the
	// pipeline, so timed-out work stops at the next stage boundary.
	RequestTimeout time.Duration
	// Fabric, when non-nil, joins this node to a consistent-hash
	// cluster: the peer endpoints (/v1/record, /v1/fabric/eval,
	// /v1/ping) and the cluster view (/v1/cluster) are registered, and
	// fabric counters join /v1/stats and /metrics.
	Fabric *fabric.Fabric
	// PeerFaults is the TESTING ONLY peer-layer fault plan
	// (-fault-peer): scheduled drops, stalls and corruptions applied to
	// this node's peer-facing endpoints.
	PeerFaults *fabric.PeerFaultPlan
}

// server is the msfud HTTP service: request parsing, admission control,
// cross-request singleflight, job tracking and SSE streaming around one
// shared magicstate.Batcher, so every request — single point, streamed
// grid, polled job — draws from the same memory + disk cache tier and
// the same compute budget.
type server struct {
	batcher *magicstate.Batcher
	cfg     serverConfig

	adm     *admission
	rl      *rateLimiter
	flights *flightTable
	met     *metrics

	// draining flips once at shutdown: new compute requests answer 503
	// + Retry-After while in-flight work finishes or is cancelled.
	draining atomic.Bool

	mu        sync.Mutex
	jobs      map[string]*job
	nextJob   int64
	pruneFrom int64 // lowest job number that might still be evictable

	// streamCancels tracks live SSE requests so drain can end them with
	// a terminal frame instead of stalling shutdown behind them.
	streamCancels map[int64]context.CancelFunc
	nextStream    int64

	jobWG sync.WaitGroup
}

// job is one asynchronous /v1/batch evaluation.
type job struct {
	id     string
	cancel context.CancelFunc
	total  int
	done   atomic.Int64

	finished chan struct{} // closed when results/err are set
	results  []resultJSON
	err      error
}

// newServer wires a server around a batcher under the given budget.
func newServer(b *magicstate.Batcher, cfg serverConfig) *server {
	s := &server{
		batcher:       b,
		cfg:           cfg,
		adm:           newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		rl:            newRateLimiter(cfg.Rate, cfg.Burst),
		flights:       newFlightTable(),
		jobs:          make(map[string]*job),
		streamCancels: make(map[int64]context.CancelFunc),
		pruneFrom:     1,
	}
	s.met = newMetrics(b, s.adm, s.rl, s.flights, s.jobsInFlight)
	s.met.fabric = cfg.Fabric
	return s
}

// jobsInFlight counts unfinished jobs (the /metrics gauge).
func (s *server) jobsInFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		select {
		case <-j.finished:
		default:
			n++
		}
	}
	return n
}

// startDrain begins graceful shutdown: new compute requests answer 503
// + Retry-After, running jobs are cancelled, and live SSE streams get
// their terminal frame. Idempotent.
func (s *server) startDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.cancel()
	}
	for _, cancel := range s.streamCancels {
		cancel()
	}
	s.mu.Unlock()
}

// awaitJobs waits (up to the deadline) for job goroutines to finish, so
// the store can be closed without racing in-flight PutReport calls.
// Called during shutdown, after startDrain cancelled the jobs.
func (s *server) awaitJobs(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
}

// drainJobs is the full drain sequence (tests exercise it; main runs
// startDrain and awaitJobs around the HTTP listener shutdown).
func (s *server) drainJobs(timeout time.Duration) {
	s.startDrain()
	s.awaitJobs(timeout)
}

// handler builds the service's route table, each route wrapped in the
// metrics middleware.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.instrument("/v1/optimize", s.handleOptimize))
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobCancel))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.met.handleMetrics))
	if s.cfg.Fabric != nil {
		mux.HandleFunc("GET /v1/record/{key}", s.instrument("/v1/record", s.handleRecordGet))
		mux.HandleFunc("PUT /v1/record/{key}", s.instrument("/v1/record", s.handleRecordPut))
		mux.HandleFunc("POST /v1/fabric/eval", s.instrument("/v1/fabric/eval", s.handleFabricEval))
		mux.HandleFunc("GET /v1/ping", s.instrument("/v1/ping", s.handlePing))
		mux.HandleFunc("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	}
	return mux
}

// statusRecorder captures the status code a handler writes, so the
// metrics middleware can label the request. It forwards Flush for the
// SSE path.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer (SSE streaming needs it).
func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a handler with request counting and latency
// accounting. A handler that wrote nothing because its client vanished
// is recorded under the conventional code 499 (client closed request).
func (s *server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		code := rec.status
		if code == 0 {
			if r.Context().Err() != nil {
				code = 499
			} else {
				code = http.StatusOK
			}
		}
		s.met.observe(path, code, time.Since(start))
	}
}

// gate applies the pre-compute admission checks shared by the optimize
// and batch endpoints: 503 while draining, then the per-client rate
// limit. It reports whether the request may proceed (the response has
// been written when not).
func (s *server) gate(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", drainRetryAfterSeconds))
		httpError(w, http.StatusServiceUnavailable, "shutting down, retry against another replica")
		return false
	}
	client := r.RemoteAddr
	if host, _, err := net.SplitHostPort(client); err == nil {
		client = host
	}
	if ok, retryAfter := s.rl.allow(client, time.Now()); !ok {
		secs := int(retryAfter.Seconds()) + 1
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		w.Header().Set("X-RateLimit-Limit", fmt.Sprintf("%g", s.rl.rate))
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded for %s: %g requests/s, retry in %ds", client, s.rl.rate, secs)
		return false
	}
	return true
}

// rejectQueueFull answers a request the admission budget turned away.
func (s *server) rejectQueueFull(w http.ResponseWriter) {
	secs := s.met.retryAfterSeconds()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	httpError(w, http.StatusTooManyRequests,
		"server at capacity (%d executing, %d queued), retry in %ds",
		s.adm.maxInflight, s.adm.maxQueue, secs)
}

// decodeJSON strictly decodes a bounded request body into v: bodies
// over maxRequestBody, unknown fields (typo'd requests must not be
// silently tolerated), malformed JSON and trailing garbage all answer
// a structured 400. It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, http.StatusBadRequest, "request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		httpError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// optimizeRequest is the JSON body of /v1/optimize and one point of a
// /v1/batch points list. Strategy and style names match the msfu CLI
// flags; empty strings pick the same defaults.
type optimizeRequest struct {
	Capacity        int    `json:"capacity"`
	Levels          int    `json:"levels"`
	Reuse           bool   `json:"reuse,omitempty"`
	Strategy        string `json:"strategy,omitempty"`
	Seed            int64  `json:"seed,omitempty"`
	Style           string `json:"style,omitempty"`
	Distance        int    `json:"distance,omitempty"`
	DisableBarriers bool   `json:"disable_barriers,omitempty"`
	// Workload/WorkloadSource swap the built-in factory for a frontend
	// circuit ("qasm", "scaffold" or "random"; see Options.Workload);
	// capacity/levels are ignored for workload points. Defects names
	// fabrication-defective mesh tiles in the canonical "x,y;x,y" form.
	Workload       string `json:"workload,omitempty"`
	WorkloadSource string `json:"workload_source,omitempty"`
	Defects        string `json:"defects,omitempty"`
}

// resultJSON is the wire form of magicstate.Result.
type resultJSON struct {
	Strategy           string  `json:"strategy"`
	Latency            int     `json:"latency"`
	Area               int     `json:"area"`
	Volume             float64 `json:"volume"`
	CriticalLatency    int     `json:"critical_latency"`
	CriticalVolume     float64 `json:"critical_volume"`
	PermutationLatency int     `json:"permutation_latency,omitempty"`
}

func resultToJSON(r *magicstate.Result) resultJSON {
	return resultJSON{
		Strategy:           r.Strategy,
		Latency:            r.Latency,
		Area:               r.Area,
		Volume:             r.Volume,
		CriticalLatency:    r.CriticalLatency,
		CriticalVolume:     r.CriticalVolume,
		PermutationLatency: r.PermutationLatency,
	}
}

// point lowers a request to the public API's batch point, rejecting
// unknown names and invalid factory shapes up front so bad requests
// answer 400, not 500.
func (r optimizeRequest) point() (magicstate.BatchPoint, error) {
	var pt magicstate.BatchPoint
	if r.Workload == "" {
		pt.Spec = magicstate.FactorySpec{Capacity: r.Capacity, Levels: r.Levels, Reuse: r.Reuse}
		if r.Levels == 0 {
			pt.Spec.Levels = 1
		}
		if err := pt.Spec.Validate(); err != nil {
			return pt, err
		}
	} else if err := magicstate.ValidateWorkload(r.Workload, r.WorkloadSource, r.Seed); err != nil {
		return pt, err
	}
	if r.Defects != "" {
		if err := magicstate.ValidateDefects(r.Defects); err != nil {
			return pt, err
		}
	}
	pt.Opts = magicstate.Options{
		Seed:            r.Seed,
		DisableBarriers: r.DisableBarriers,
		Distance:        r.Distance,
		Workload:        r.Workload,
		WorkloadSource:  r.WorkloadSource,
		Defects:         r.Defects,
	}
	if r.Style != "" {
		style, err := magicstate.ParseStyle(r.Style)
		if err != nil {
			return pt, err
		}
		pt.Opts.Style = style
	}
	if r.Strategy != "" {
		st, err := magicstate.ParseStrategy(r.Strategy)
		if err != nil {
			return pt, err
		}
		pt.Opts = pt.Opts.WithStrategy(st)
	}
	return pt, nil
}

// batchRequest is the JSON body of /v1/batch: an explicit points list,
// a grid to expand (capacity-major, then strategy, then seed — the
// order the CLIs print), or a named preset suite. Exactly one of the
// three must be given. Parallelism narrows the worker pool for this
// request; it is clamped to the server's -parallel cap.
type batchRequest struct {
	Points      []optimizeRequest `json:"points,omitempty"`
	Grid        *gridSpec         `json:"grid,omitempty"`
	Preset      string            `json:"preset,omitempty"`
	Parallelism int               `json:"parallelism,omitempty"`
}

// gridSpec is the cross-product form of a batch: capacities x
// strategies x seeds at one level/reuse/style setting.
type gridSpec struct {
	Capacities      []int    `json:"capacities"`
	Levels          int      `json:"levels"`
	Strategies      []string `json:"strategies,omitempty"`
	Seeds           []int64  `json:"seeds,omitempty"`
	Reuse           bool     `json:"reuse,omitempty"`
	Style           string   `json:"style,omitempty"`
	Distance        int      `json:"distance,omitempty"`
	DisableBarriers bool     `json:"disable_barriers,omitempty"`
}

// expand flattens a batch request to points.
func (b batchRequest) expand() ([]magicstate.BatchPoint, error) {
	if b.Preset != "" {
		if len(b.Points) > 0 || b.Grid != nil {
			return nil, fmt.Errorf("give preset, points or grid, not a combination")
		}
		p, ok := presets.Get(b.Preset)
		if !ok {
			return nil, fmt.Errorf("unknown preset %q (available: %s)",
				b.Preset, strings.Join(presets.Names(), ", "))
		}
		return p.Points, nil
	}
	reqs := b.Points
	if b.Grid != nil {
		if len(b.Points) > 0 {
			return nil, fmt.Errorf("give either points or grid, not both")
		}
		strategies := b.Grid.Strategies
		if len(strategies) == 0 {
			strategies = []string{""}
		}
		seeds := b.Grid.Seeds
		if len(seeds) == 0 {
			seeds = []int64{0}
		}
		for _, c := range b.Grid.Capacities {
			for _, st := range strategies {
				for _, seed := range seeds {
					reqs = append(reqs, optimizeRequest{
						Capacity: c, Levels: b.Grid.Levels, Reuse: b.Grid.Reuse,
						Strategy: st, Seed: seed, Style: b.Grid.Style,
						Distance: b.Grid.Distance, DisableBarriers: b.Grid.DisableBarriers,
					})
				}
			}
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	points := make([]magicstate.BatchPoint, len(reqs))
	for i, r := range reqs {
		pt, err := r.point()
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		points[i] = pt
	}
	return points, nil
}

// httpError answers with a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON answers 200 with v as JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// requestContext derives the compute context for one synchronous
// request: the client's own context, bounded by the server's
// per-request deadline when one is configured.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// handleOptimize evaluates one point synchronously. Three tiers, in
// order: a cache hit (memory or disk) is served immediately without
// touching the admission budget; a point someone else is computing
// right now joins that flight and shares its result; only a genuinely
// new point pays for admission and compute. The request context — with
// the client's disconnect and the server's -request-timeout deadline —
// propagates into the pipeline, so abandoned work actually stops; a
// shared computation survives until its last subscriber is gone.
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r) {
		return
	}
	var req optimizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	pt, err := req.point()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if res, ok := s.batcher.Lookup(pt.Spec, pt.Opts); ok {
		writeJSON(w, http.StatusOK, resultToJSON(res))
		return
	}
	key, err := magicstate.PointKey(pt.Spec, pt.Opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, _, err := s.flights.do(ctx, key, func(fctx context.Context) (*magicstate.Result, error) {
		release, err := s.adm.acquire(fctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return s.batcher.OptimizeContext(fctx, pt.Spec, pt.Opts)
	})
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resultToJSON(res))
	case errors.Is(err, errQueueFull):
		s.rejectQueueFull(w)
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.met.retryAfterSeconds()))
		httpError(w, http.StatusGatewayTimeout, "request deadline (%s) exceeded", s.cfg.RequestTimeout)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client went away; there is nobody to answer. The instrument
		// wrapper records this as code 499.
	default:
		httpError(w, http.StatusInternalServerError, "optimize: %v", err)
	}
}

// handleBatch evaluates a grid. With ?stream=1 (or an Accept header
// asking for text/event-stream) the evaluation runs inside the request
// and progress is streamed as server-sent events; closing the
// connection cancels the remaining points. Otherwise the batch becomes
// a job: the response is 202 with a job id to poll at /v1/jobs/{id}.
// Both paths draw on the admission budget — the job path reserves its
// place synchronously, so a full queue answers 429 at submit time, not
// as a failed job later.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r) {
		return
	}
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	points, err := req.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(points) > s.cfg.MaxPoints {
		httpError(w, http.StatusBadRequest, "batch of %d points exceeds the server cap of %d", len(points), s.cfg.MaxPoints)
		return
	}
	parallel := req.Parallelism
	if parallel <= 0 || parallel > s.cfg.MaxParallel {
		parallel = s.cfg.MaxParallel
	}

	if r.URL.Query().Get("stream") == "1" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamBatch(w, r, points, parallel)
		return
	}

	// Asynchronous job path: claim budget now (429 on a full queue),
	// convert the claim to an execution slot inside the job goroutine.
	resv, err := s.adm.reserve()
	if err != nil {
		s.rejectQueueFull(w)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{cancel: cancel, total: len(points), finished: make(chan struct{})}
	s.mu.Lock()
	s.nextJob++
	j.id = fmt.Sprintf("job-%d", s.nextJob)
	s.jobs[j.id] = j
	s.pruneJobsLocked()
	s.mu.Unlock()

	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		defer cancel()
		release, err := resv.wait(ctx)
		if err != nil {
			j.err = err
			s.met.jobsFailed.Add(1)
			close(j.finished)
			return
		}
		defer release()
		results, err := s.batcher.OptimizeBatch(points, magicstate.BatchOptions{
			Parallelism: parallel,
			Context:     ctx,
			Progress:    func(done, total int) { j.done.Store(int64(done)) },
		})
		if err != nil {
			j.err = err
			s.met.jobsFailed.Add(1)
		} else {
			j.results = make([]resultJSON, len(results))
			for i, res := range results {
				j.results[i] = resultToJSON(res)
			}
			s.met.jobsCompleted.Add(1)
		}
		close(j.finished)
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id": j.id,
		"total":  j.total,
		"poll":   "/v1/jobs/" + j.id,
	})
}

// streamBatch runs points inside the request and reports progress as
// SSE frames: "progress" events with done/total counts, then one
// "done" event carrying the full result array (or "error" with the
// failure). The request context cancels evaluation when the client
// goes away; a drain cancels it server-side, and either way the stream
// always ends with a terminal frame when the connection is writable —
// an SSE stream is never silently dropped by the server.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, points []magicstate.BatchPoint, parallel int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	// Register with the drain set so shutdown can end this stream with
	// a terminal frame instead of waiting out the whole batch.
	s.mu.Lock()
	s.nextStream++
	streamID := s.nextStream
	s.streamCancels[streamID] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.streamCancels, streamID)
		s.mu.Unlock()
	}()

	// The stream occupies an execution slot like any other compute; a
	// full queue rejects before any SSE bytes are written.
	release, err := s.adm.acquire(ctx)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejectQueueFull(w)
		}
		// A dead client needs no response; instrument records 499.
		return
	}
	defer release()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Progress callbacks arrive from worker goroutines (serialized by
	// the engine) while this goroutine owns the ResponseWriter, so
	// frames are written here and handed over via a channel.
	type frame struct {
		event string
		data  any
	}
	frames := make(chan frame, 16)
	go func() {
		defer close(frames)
		results, err := s.batcher.OptimizeBatch(points, magicstate.BatchOptions{
			Parallelism: parallel,
			Context:     ctx,
			Progress: func(done, total int) {
				// Never block the worker pool on the client: progress
				// frames are advisory, so when the client reads slower
				// than points complete the backlog is dropped (the next
				// progress frame carries the up-to-date count anyway).
				select {
				case frames <- frame{"progress", map[string]int{"done": done, "total": total}}:
				default:
				}
			},
		})
		// The terminal frame is never dropped — but a client that went
		// away must not pin this goroutine either.
		var final frame
		if err != nil {
			final = frame{"error", map[string]string{"error": err.Error()}}
		} else {
			out := make([]resultJSON, len(results))
			for i, res := range results {
				out[i] = resultToJSON(res)
			}
			final = frame{"done", map[string]any{"results": out}}
		}
		select {
		case frames <- final:
		case <-r.Context().Done():
		}
	}()
	for f := range frames {
		data, err := json.Marshal(f.data)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.event, data)
		fl.Flush()
	}
}

// maxFinishedJobs bounds how many completed jobs stay queryable; the
// oldest finished jobs are dropped first. Running jobs are never
// evicted.
const maxFinishedJobs = 256

// pruneJobsLocked evicts the lowest-numbered finished jobs beyond the
// retention cap. Callers hold s.mu. Job ids are dense ("job-N") and
// eviction is oldest-first, so the scan starts at pruneFrom — the
// lowest number that might still be live — and advances the cursor
// past ids that are gone, keeping each prune proportional to the live
// job count rather than to every job the server has ever issued.
func (s *server) pruneJobsLocked() {
	finished := 0
	for _, j := range s.jobs {
		select {
		case <-j.finished:
			finished++
		default:
		}
	}
	for n := s.pruneFrom; finished > maxFinishedJobs && n <= s.nextJob; n++ {
		id := fmt.Sprintf("job-%d", n)
		j, ok := s.jobs[id]
		if !ok {
			if n == s.pruneFrom {
				s.pruneFrom++
			}
			continue
		}
		select {
		case <-j.finished:
			delete(s.jobs, id)
			finished--
			if n == s.pruneFrom {
				s.pruneFrom++
			}
		default:
			// Still running: it may finish and become evictable later,
			// so the cursor cannot move past it.
		}
	}
}

// handleJobGet reports a job's progress, and its results once finished.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	resp := map[string]any{
		"job_id": j.id,
		"total":  j.total,
		"done":   j.done.Load(),
	}
	select {
	case <-j.finished:
		if j.err != nil {
			resp["status"] = "failed"
			resp["error"] = j.err.Error()
		} else {
			resp["status"] = "done"
			resp["results"] = j.results
		}
	default:
		resp["status"] = "running"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobCancel cancels a running job. The job stays queryable; its
// status resolves to failed with a cancellation error.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"job_id": j.id, "status": "cancelling"})
}

// handleStats reports the operational counters as JSON. Every number
// here is read from the same sources the /metrics endpoint scrapes —
// the metrics registry and the subsystems it borrows gauges from — so
// the two views cannot drift.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsPayload())
}

// statsPayload builds the /v1/stats body; /v1/cluster reuses it for
// this node's own entry so the cluster view and the local view agree.
func (s *server) statsPayload() map[string]any {
	cs := s.batcher.Stats()
	payload := map[string]any{
		"uptime_seconds": int64(time.Since(s.met.started).Seconds()),
		"max_parallel":   s.cfg.MaxParallel,
		"draining":       s.draining.Load(),
		"cache": map[string]any{
			"memory_hits":      cs.MemoryHits,
			"memory_misses":    cs.MemoryMisses,
			"disk_hits":        cs.DiskHits,
			"peer_fetch_hits":  cs.PeerFetchHits,
			"remote_eval_hits": cs.RemoteEvalHits,
			"stored_records":   cs.StoredRecords,
			"stored_bytes":     cs.StoredBytes,
			"checkpoint_dir":   cs.CheckpointDir,
			// Stage-tier traffic: artifacts replayed from the durable
			// store (hits) vs pipeline stages actually executed
			// (computes), per stage.
			"stage_build_hits":     cs.StageBuildHits,
			"stage_build_computes": cs.StageBuildComputes,
			"stage_place_hits":     cs.StagePlaceHits,
			"stage_place_computes": cs.StagePlaceComputes,
			"stage_sim_hits":       cs.StageSimHits,
			"stage_sim_computes":   cs.StageSimComputes,
			"stage_records":        cs.StageRecords,
		},
		"jobs": map[string]any{
			"in_flight": s.jobsInFlight(),
			"completed": s.met.jobsCompleted.Load(),
			"failed":    s.met.jobsFailed.Load(),
		},
		"admission": map[string]any{
			"max_inflight":   s.adm.maxInflight,
			"max_queue":      s.adm.maxQueue,
			"inflight":       s.adm.inflight.Load(),
			"queue_depth":    s.adm.queued.Load(),
			"queue_rejected": s.adm.rejected.Load(),
			"rate_limited":   s.rl.limited.Load(),
		},
		"singleflight": map[string]any{
			"leaders":   s.flights.leaders.Load(),
			"shared":    s.flights.shared.Load(),
			"in_flight": s.flights.size(),
		},
		"requests": s.met.requestCounts(),
		"latency_seconds": map[string]any{
			"p50": s.met.latency.quantile(0.50),
			"p99": s.met.latency.quantile(0.99),
		},
	}
	if s.cfg.Fabric != nil {
		payload["fabric"] = s.cfg.Fabric.Stats()
	}
	return payload
}
