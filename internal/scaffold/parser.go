package scaffold

import "fmt"

// Parse turns Scaffold source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Defines: map[string]int{}, Modules: map[string]*Module{}}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokHash, "#define"):
			p.next()
			name := p.expect(tokIdent).text
			valTok := p.expect(tokNumber)
			val := 0
			fmt.Sscanf(valTok.text, "%d", &val)
			prog.Defines[name] = val
		case p.at(tokIdent, "module"):
			m, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Modules[m.Name]; dup {
				return nil, fmt.Errorf("scaffold:%d: module %s redefined", m.Line, m.Name)
			}
			prog.Modules[m.Name] = m
			prog.Order = append(prog.Order, m.Name)
		default:
			return nil, fmt.Errorf("scaffold:%d: expected #define or module, got %q", p.cur().line, p.cur().text)
		}
		if p.err != nil {
			return nil, p.err
		}
	}
	if _, ok := prog.Modules["main"]; !ok {
		return nil, fmt.Errorf("scaffold: no main module")
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
	err  error
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) token {
	if p.cur().kind != kind {
		p.fail("expected token kind %d, got %q", kind, p.cur().text)
		return token{}
	}
	return p.next()
}

func (p *parser) expectPunct(text string) {
	if !p.accept(tokPunct, text) {
		p.fail("expected %q, got %q", text, p.cur().text)
	}
}

func (p *parser) fail(format string, args ...interface{}) {
	if p.err == nil {
		p.err = fmt.Errorf("scaffold:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
	}
	// Skip to EOF to stop parsing.
	p.pos = len(p.toks) - 1
}

func (p *parser) parseModule() (*Module, error) {
	line := p.cur().line
	p.next() // module
	name := p.expect(tokIdent).text
	p.expectPunct("(")
	m := &Module{Name: name, Line: line}
	for !p.at(tokPunct, ")") && p.err == nil {
		if len(m.Params) > 0 {
			p.expectPunct(",")
		}
		if p.at(tokIdent, "qbit") {
			p.next()
			p.accept(tokPunct, "*")
		}
		m.Params = append(m.Params, p.expect(tokIdent).text)
	}
	p.expectPunct(")")
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, p.err
}

func (p *parser) parseBlock() ([]Stmt, error) {
	p.expectPunct("{")
	var stmts []Stmt
	for !p.at(tokPunct, "}") && p.err == nil {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	p.expectPunct("}")
	return stmts, p.err
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tokIdent, "qbit"):
		line := p.cur().line
		p.next()
		name := p.expect(tokIdent).text
		p.expectPunct("[")
		size := p.parseExpr()
		p.expectPunct("]")
		p.expectPunct(";")
		return &DeclStmt{Name: name, Size: size, Line: line}, p.err
	case p.at(tokIdent, "for"):
		return p.parseFor()
	case p.cur().kind == tokIdent:
		line := p.cur().line
		name := p.next().text
		p.expectPunct("(")
		var args []Expr
		for !p.at(tokPunct, ")") && p.err == nil {
			if len(args) > 0 {
				p.expectPunct(",")
			}
			args = append(args, p.parseExpr())
		}
		p.expectPunct(")")
		p.expectPunct(";")
		if isBuiltinGate(name) {
			return &GateStmt{Name: name, Args: args, Line: line}, p.err
		}
		return &CallStmt{Name: name, Args: args, Line: line}, p.err
	case p.accept(tokPunct, ";"):
		return nil, nil
	}
	p.fail("unexpected token %q", p.cur().text)
	return nil, p.err
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.cur().line
	p.next() // for
	p.expectPunct("(")
	if !p.accept(tokIdent, "int") {
		p.fail("for loops must declare an int induction variable")
	}
	v := p.expect(tokIdent).text
	p.expectPunct("=")
	lo := p.parseExpr()
	p.expectPunct(";")
	if p.expect(tokIdent).text != v {
		p.fail("for condition must test the induction variable")
	}
	p.expectPunct("<")
	hi := p.parseExpr()
	p.expectPunct(";")
	if p.expect(tokIdent).text != v {
		p.fail("for increment must bump the induction variable")
	}
	p.expectPunct("++")
	p.expectPunct(")")
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: v, Lo: lo, Hi: hi, Body: body, Line: line}, p.err
}

// parseExpr parses + and - over terms.
func (p *parser) parseExpr() Expr {
	left := p.parseTerm()
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.next().text
		right := p.parseTerm()
		left = &BinExpr{Op: op, Left: left, Right: right}
	}
	return left
}

// parseTerm parses * and / over factors.
func (p *parser) parseTerm() Expr {
	left := p.parseFactor()
	for p.at(tokPunct, "*") || p.at(tokPunct, "/") {
		op := p.next().text
		right := p.parseFactor()
		left = &BinExpr{Op: op, Left: left, Right: right}
	}
	return left
}

func (p *parser) parseFactor() Expr {
	switch {
	case p.cur().kind == tokNumber:
		t := p.next()
		v := 0
		fmt.Sscanf(t.text, "%d", &v)
		return &NumExpr{Value: v}
	case p.cur().kind == tokIdent:
		t := p.next()
		if p.accept(tokPunct, "[") {
			sub := p.parseExpr()
			p.expectPunct("]")
			return &IndexExpr{Array: t.text, Sub: sub, Line: t.line}
		}
		return &VarExpr{Name: t.text, Line: t.line}
	case p.accept(tokPunct, "("):
		e := p.parseExpr()
		p.expectPunct(")")
		return e
	}
	p.fail("unexpected token %q in expression", p.cur().text)
	return &NumExpr{}
}

func isBuiltinGate(name string) bool {
	switch name {
	case "H", "X", "Z", "S", "T", "CNOT", "CXX",
		"injectT", "injectTdag", "MeasX", "MeasZ", "PrepZ", "barrier":
		return true
	}
	return false
}
