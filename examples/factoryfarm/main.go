// Factoryfarm: size a farm of stitched factories against an application's
// T-gate demand and study how a prepared-state buffer (§IX of the paper)
// smooths distillation failures into a steady supply.
package main

import (
	"fmt"
	"log"

	"magicstate"
	"magicstate/internal/system"
)

func main() {
	spec := magicstate.FactorySpec{Capacity: 16, Levels: 2, Reuse: true}
	opt, err := magicstate.Optimize(spec, magicstate.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	est, err := magicstate.EstimateResources(spec)
	if err != nil {
		log.Fatal(err)
	}

	cfg := system.Config{
		FactoryLatency: opt.Latency,
		BatchSize:      spec.Capacity,
		SuccessProb:    1 / est.ExpectedRunsPerBatch,
		DemandRate:     0.02, // application requests ~1 T state per 50 cycles
		Cycles:         400_000,
		Seed:           1,
	}
	cfg.Factories = system.FactoriesFor(cfg, 1.25)
	fmt.Printf("factory: latency %d cycles, batch %d, success probability %.3f\n",
		cfg.FactoryLatency, cfg.BatchSize, cfg.SuccessProb)
	fmt.Printf("demand %.3f states/cycle -> %d factories (25%% headroom)\n\n",
		cfg.DemandRate, cfg.Factories)

	fmt.Println("buffer sweep (no loss compensation):")
	pts, err := system.BufferSweep(cfg, []int{1, 4, 16, 64, 256})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  buffer %4d: stall fraction %6.3f%%  avg occupancy %7.1f\n",
			p.BufferSize, 100*p.StallFraction, p.AvgOccupancy)
	}

	cfg.BufferSize = 64
	cfg.MaintenanceReserve = 2 * cfg.BatchSize
	r, err := system.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a %d-state maintenance reserve (loss compensation, §IX):\n", cfg.MaintenanceReserve)
	fmt.Printf("  %d failed batches, %d compensated, stall fraction %.3f%%\n",
		r.FailedBatches, r.CompensatedBatches, 100*r.StallFraction())
}
