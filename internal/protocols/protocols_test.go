package protocols

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/circuit"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
)

func TestRM14ChecksStructure(t *testing.T) {
	checks := rm14Checks()
	for j, ck := range checks {
		if len(ck) != 8 {
			t.Errorf("check %d covers %d positions, want 8", j, len(ck))
		}
		for _, i := range ck {
			if (i+1)&(1<<j) == 0 {
				t.Errorf("check %d contains position %d whose bit %d is clear", j, i+1, j)
			}
		}
	}
	// Every position is covered by exactly popcount(position) checks.
	for i := 0; i < 15; i++ {
		pos := i + 1
		want := 0
		for b := 0; b < 4; b++ {
			if pos&(1<<b) != 0 {
				want++
			}
		}
		got := 0
		for _, ck := range checks {
			for _, p := range ck {
				if p == i {
					got++
				}
			}
		}
		if got != want {
			t.Errorf("position %d covered by %d checks, want %d", pos, got, want)
		}
	}
}

func TestSeedIndexIsPowerOfTwoPosition(t *testing.T) {
	for j := 0; j < 4; j++ {
		if got, want := seedIndex(j)+1, 1<<j; got != want {
			t.Errorf("seedIndex(%d)+1 = %d, want %d", j, got, want)
		}
	}
}

func TestCircuit15to1Structure(t *testing.T) {
	c := Circuit15to1()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := c.NumQubits, (BravyiKitaev15{}).Qubits(); got != want {
		t.Errorf("NumQubits = %d, want Qubits() = %d", got, want)
	}
	if got := c.CountKind(circuit.KindInjectT); got != 15 {
		t.Errorf("injectT count = %d, want 15", got)
	}
	if got := c.CountKind(circuit.KindMeasX); got != 15 {
		t.Errorf("measx count = %d, want 15", got)
	}
	if got := c.CountKind(circuit.KindCXX); got != 10 {
		t.Errorf("cxx count = %d, want 10 (4 encode + logical + mirror)", got)
	}
	if got := c.CountKind(circuit.KindH); got != 5 {
		t.Errorf("h count = %d, want 5 (4 seeds + out)", got)
	}
}

func TestCircuit15to1InteractionGraphConnected(t *testing.T) {
	c := Circuit15to1()
	g := graph.FromCircuit(c)
	_, count := g.Components()
	if count != 1 {
		t.Errorf("interaction graph has %d components, want 1", count)
	}
}

func TestCircuit15to1Simulates(t *testing.T) {
	c := Circuit15to1()
	pl := layout.Random(c.NumQubits, rand.New(rand.NewSource(7)))
	res, err := mesh.Simulate(c, pl, mesh.Config{RecordPaths: true})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Latency <= 0 {
		t.Errorf("latency = %d, want > 0", res.Latency)
	}
	if err := res.CheckNoOverlaps(); err != nil {
		t.Errorf("overlap invariant: %v", err)
	}
}

func TestBravyiKitaev15Model(t *testing.T) {
	p := BravyiKitaev15{}
	if p.Inputs() != 15 || p.Outputs() != 1 {
		t.Fatalf("in/out = %d/%d, want 15/1", p.Inputs(), p.Outputs())
	}
	eps := 1e-3
	if got, want := p.OutputError(eps), 35*eps*eps*eps; got != want {
		t.Errorf("OutputError = %g, want %g", got, want)
	}
	if got, want := p.SuccessProbability(eps), 1-15*eps; math.Abs(got-want) > 1e-12 {
		t.Errorf("SuccessProbability = %g, want %g", got, want)
	}
	if got := p.SuccessProbability(0.5); got != 0 {
		t.Errorf("SuccessProbability(0.5) = %g, want clamp to 0", got)
	}
}

func TestBravyiHaahModelMatchesClosedForms(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		p, err := NewBravyiHaah(k)
		if err != nil {
			t.Fatal(err)
		}
		if p.Inputs() != 3*k+8 || p.Outputs() != k || p.Qubits() != 5*k+13 {
			t.Errorf("k=%d: in/out/qubits = %d/%d/%d", k, p.Inputs(), p.Outputs(), p.Qubits())
		}
		eps := 2e-3
		if got, want := p.OutputError(eps), float64(1+3*k)*eps*eps; math.Abs(got-want) > 1e-15 {
			t.Errorf("k=%d OutputError = %g, want %g", k, got, want)
		}
		if got, want := p.SuccessProbability(eps), 1-float64(8+3*k)*eps; math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d SuccessProbability = %g, want %g", k, got, want)
		}
	}
}

func TestNewBravyiHaahRejectsBadK(t *testing.T) {
	if _, err := NewBravyiHaah(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMultilevelComposition(t *testing.T) {
	base, _ := NewBravyiHaah(2)
	ml, err := NewMultilevel(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ml.Inputs(), 14*14; got != want {
		t.Errorf("Inputs = %d, want %d", got, want)
	}
	if got, want := ml.Outputs(), 4; got != want {
		t.Errorf("Outputs = %d, want %d", got, want)
	}
	eps := 5e-3
	manual := base.OutputError(base.OutputError(eps))
	if got := ml.OutputError(eps); math.Abs(got-manual) > 1e-18 {
		t.Errorf("OutputError = %g, want iterated %g", got, manual)
	}
	// Level 1 is the widest: 14 modules of 23 qubits vs level 2's 2x23.
	if got, want := ml.Qubits(), 14*base.Qubits(); got != want {
		t.Errorf("Qubits = %d, want widest level %d", got, want)
	}
}

func TestMultilevelSuccessProbability(t *testing.T) {
	base, _ := NewBravyiHaah(2)
	ml, _ := NewMultilevel(base, 2)
	eps := 1e-3
	// 14 level-1 modules at eps, 2 level-2 modules at the improved rate.
	want := math.Pow(base.SuccessProbability(eps), 14) *
		math.Pow(base.SuccessProbability(base.OutputError(eps)), 2)
	if got := ml.SuccessProbability(eps); math.Abs(got-want) > 1e-12 {
		t.Errorf("SuccessProbability = %g, want %g", got, want)
	}
}

func TestNewMultilevelRejectsBadArgs(t *testing.T) {
	base, _ := NewBravyiHaah(2)
	if _, err := NewMultilevel(nil, 1); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewMultilevel(base, 0); err == nil {
		t.Error("levels=0 accepted")
	}
}

func TestExpectedRawPerOutputDominatesIdeal(t *testing.T) {
	base, _ := NewBravyiHaah(4)
	eps := 5e-3
	if ideal, exp := RawPerOutput(base), ExpectedRawPerOutput(base, eps); exp < ideal {
		t.Errorf("expected raw %g < ideal %g", exp, ideal)
	}
}

func TestExpectedRawPerOutputInfiniteAtZeroSuccess(t *testing.T) {
	p := BravyiKitaev15{}
	if got := ExpectedRawPerOutput(p, 0.5); !math.IsInf(got, 1) {
		t.Errorf("ExpectedRawPerOutput at ps=0 = %g, want +Inf", got)
	}
}

func TestProvisionBravyiHaah(t *testing.T) {
	base, _ := NewBravyiHaah(2)
	eps := 5e-3
	plan, err := Provision(base, eps, 1e-8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// One level: 7*(5e-3)^2 = 1.75e-4. Two: 7*(1.75e-4)^2 ≈ 2.1e-7.
	// Three: ≈ 3.2e-13 <= 1e-8.
	if plan.Levels != 3 {
		t.Errorf("Levels = %d, want 3", plan.Levels)
	}
	if plan.OutputError > 1e-8 {
		t.Errorf("OutputError = %g, want <= 1e-8", plan.OutputError)
	}
	if plan.SuccessProbability <= 0 || plan.SuccessProbability > 1 {
		t.Errorf("SuccessProbability = %g out of (0,1]", plan.SuccessProbability)
	}
	if plan.ExpectedRawPerOutput < plan.RawPerOutput {
		t.Errorf("expected raw %g < ideal %g", plan.ExpectedRawPerOutput, plan.RawPerOutput)
	}
	if math.IsInf(plan.VolumeProxy, 1) || plan.VolumeProxy <= 0 {
		t.Errorf("VolumeProxy = %g", plan.VolumeProxy)
	}
}

func TestProvisionDetectsDivergence(t *testing.T) {
	base, _ := NewBravyiHaah(8) // suppresses only below eps = 1/25
	if _, err := Provision(base, 0.1, 1e-8, 8); err == nil {
		t.Error("divergent working point accepted")
	}
}

func TestProvisionRejectsBadRates(t *testing.T) {
	base, _ := NewBravyiHaah(2)
	if _, err := Provision(base, 0, 1e-8, 8); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Provision(base, 1e-3, 0, 8); err == nil {
		t.Error("target=0 accepted")
	}
}

func TestProvisionLevelCap(t *testing.T) {
	base, _ := NewBravyiHaah(2)
	if _, err := Provision(base, 5e-3, 1e-300, 2); err == nil {
		t.Error("unreachable target within cap accepted")
	}
}

func TestCompareReturnsRowPerCandidate(t *testing.T) {
	eps := 1e-3
	cands := DefaultCandidates(eps)
	rows := Compare(cands, eps, 1e-10, 8)
	if len(rows) != len(cands) {
		t.Fatalf("%d rows for %d candidates", len(rows), len(cands))
	}
	okCount := 0
	for _, r := range rows {
		if r.Err == nil {
			okCount++
			if r.Plan == nil {
				t.Errorf("%s: nil plan with nil error", r.Name)
			}
		}
	}
	if okCount == 0 {
		t.Error("no candidate met the target")
	}
}

func TestHaahHastingsModel(t *testing.T) {
	h := DefaultHaahHastings().AtWorkingPoint(1e-3)
	if h.Outputs() != 8 {
		t.Errorf("Outputs = %d, want 8", h.Outputs())
	}
	if h.Inputs() <= h.Outputs() {
		t.Errorf("Inputs = %d must exceed Outputs = %d", h.Inputs(), h.Outputs())
	}
	if h.Qubits() < 2*h.Outputs() {
		t.Errorf("Qubits = %d below 2k floor", h.Qubits())
	}
	eps := 1e-3
	if got := h.OutputError(eps); got >= eps {
		t.Errorf("OutputError %g does not suppress %g", got, eps)
	}
	if ps := h.SuccessProbability(eps); ps <= 0 || ps >= 1 {
		t.Errorf("SuccessProbability = %g out of (0,1)", ps)
	}
}

func TestHaahHastingsDefaultsOnZeroValue(t *testing.T) {
	var h HaahHastings
	if h.Outputs() != 1 {
		t.Errorf("zero-value Outputs = %d, want floor 1", h.Outputs())
	}
	if h.OutputError(1e-3) <= 0 {
		t.Error("zero-value OutputError not positive")
	}
}

// Property: every protocol in the default candidate set suppresses error
// for any working eps in (0, 0.01], and success probability stays in [0,1]
// and is non-increasing in eps.
func TestProtocolPropertySuppressionAndMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := rng.Float64()*0.009 + 1e-4
		for _, p := range DefaultCandidates(eps) {
			if out := p.OutputError(eps); out >= eps || out <= 0 {
				t.Logf("%s: OutputError(%g) = %g", p.Name(), eps, out)
				return false
			}
			ps1 := p.SuccessProbability(eps)
			ps2 := p.SuccessProbability(eps * 2)
			if ps1 < 0 || ps1 > 1 || ps2 > ps1 {
				t.Logf("%s: ps(%g)=%g ps(%g)=%g", p.Name(), eps, ps1, 2*eps, ps2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: multilevel input/output counts are exact powers and the
// composite error equals manual iteration for random k and L.
func TestMultilevelPropertyPowers(t *testing.T) {
	f := func(kRaw, lRaw uint8) bool {
		k := int(kRaw%6) + 1
		l := int(lRaw%3) + 1
		base, err := NewBravyiHaah(k)
		if err != nil {
			return false
		}
		ml, err := NewMultilevel(base, l)
		if err != nil {
			return false
		}
		wantIn, wantOut := 1, 1
		for i := 0; i < l; i++ {
			wantIn *= 3*k + 8
			wantOut *= k
		}
		if ml.Inputs() != wantIn || ml.Outputs() != wantOut {
			return false
		}
		eps := 1e-3
		manual := eps
		for i := 0; i < l; i++ {
			manual = base.OutputError(manual)
		}
		return math.Abs(ml.OutputError(eps)-manual) < 1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
