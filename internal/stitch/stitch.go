// Package stitch implements the paper's hierarchical stitching procedure
// (§VII, Fig. 3, Fig. 8): each Bravyi-Haah module is embedded nearly
// optimally as a compact planar block (graph partitioning on the module's
// interaction graph), identical blocks are concatenated into a block grid
// per round, later rounds reuse measured tile regions (placement-aware
// sharing-after-measurement), output ports are reassigned per module with
// a Hungarian matching to shorten permutation wires, and the inter-round
// permutation is routed through optional Valiant-style intermediate hops
// whose locations a force-directed pass anneals.
package stitch

import (
	"fmt"
	"math/rand"
	"sort"

	"magicstate/internal/assign"
	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/partition"
	"magicstate/internal/sweep/memo"
)

// HopMode selects the inter-round permutation routing of Fig. 9d.
type HopMode int

const (
	// NoHop routes each permutation move directly.
	NoHop HopMode = iota
	// RandomHop inserts one uniformly random intermediate destination per
	// wire (Valiant routing).
	RandomHop
	// AnnealedRandomHop starts from random hops and anneals their
	// locations against the crossing/length objective.
	AnnealedRandomHop
	// AnnealedMidpointHop starts each hop at the free tile nearest the
	// wire midpoint, then anneals.
	AnnealedMidpointHop
)

// String names the mode as in Fig. 9d's legend.
func (h HopMode) String() string {
	switch h {
	case NoHop:
		return "no-hop"
	case RandomHop:
		return "random-hop"
	case AnnealedRandomHop:
		return "annealed-random-hop"
	case AnnealedMidpointHop:
		return "annealed-midpoint-hop"
	}
	return fmt.Sprintf("hopmode(%d)", int(h))
}

// Options configures the stitcher.
type Options struct {
	Seed int64
	// Reuse selects placement-aware qubit reuse for rounds past the first.
	Reuse bool
	// Hops selects the permutation routing mode (default AnnealedMidpointHop,
	// the best performer in Fig. 9d).
	Hops HopMode
	// HopIters caps hop annealing passes (0 = 25).
	HopIters int
	// DisablePortReassign skips the Hungarian port matching (ablation).
	DisablePortReassign bool
	// ExpandSpacing inserts this many empty tile rows and columns between
	// adjacent module blocks, trading area for routing bandwidth — the
	// §IX "Area Expansion" study. Zero packs blocks tight.
	ExpandSpacing int
	// Barriers mirrors bravyi.Params.Barriers (default on — stitching
	// depends on the round isolation barriers expose, §V.A).
	NoBarriers bool
}

// Result is a stitched factory: the (possibly hop-rewritten) circuit with
// its metadata and the full placement.
type Result struct {
	Factory   *bravyi.Factory
	Placement *layout.Placement
	// BlockW/BlockH are the per-module block dimensions used.
	BlockW, BlockH int
	// HopWires counts wires routed through intermediate destinations.
	HopWires int
}

// blockKey identifies one module block embedding: (K, Seed) fully
// determines the single-module build, its interaction graph and the
// partition embedding, so the result can be shared process-wide.
type blockKey struct {
	K    int
	Seed int64
}

// blockVal is a memoized module block embedding: the per-register
// in-block offsets plus block dimensions. Entries are shared across
// callers and must be treated as read-only.
type blockVal struct {
	offsets []layout.Point
	bw, bh  int
}

// blockMemo caches module block embeddings. Every stitched build with
// the same (K, Seed) derives the identical embedding, and sweep grids
// (reuse scans, hop-mode comparisons, expansion studies) rebuild the
// same key dozens of times; the single-module generation plus
// EmbedSquare were the second-largest cost of a stitched build after
// hop annealing.
var blockMemo = memo.New(256)

// Build generates and places a hierarchically stitched factory.
func Build(p bravyi.Params, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.HopIters == 0 {
		opt.HopIters = 25
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	k := p.K
	qpm := 5*k + 13

	// 1. Embed one module's interaction graph as a compact block; every
	// module shares this layout (modules are identical in schedule).
	// offsets[reg] is the in-block tile of register index reg, where reg
	// follows the allocation order raw(3k+8), anc(k+5), out(k). The
	// embedding rng is a dedicated Seed+1 stream, so memoizing it does
	// not shift the build's own draw sequence.
	bv, err := func() (blockVal, error) {
		v, err := blockMemo.Do(blockKey{K: k, Seed: opt.Seed}, func() (any, error) {
			single, err := bravyi.Build(bravyi.Params{K: k, Levels: 1})
			if err != nil {
				return nil, err
			}
			moduleGraph := graph.FromCircuit(single.Circuit)
			blockP := partition.EmbedSquare(moduleGraph, rand.New(rand.NewSource(opt.Seed+1)))
			blockP.Normalize()
			offsets := make([]layout.Point, qpm)
			copy(offsets, blockP.Pos)
			return blockVal{offsets: offsets, bw: blockP.W, bh: blockP.H}, nil
		})
		if err != nil {
			return blockVal{}, err
		}
		return v.(blockVal), nil
	}()
	if err != nil {
		return nil, err
	}
	offsets, bw, bh := bv.offsets, bv.bw, bv.bh

	// 2. Block grid arrangement. Round 1 blocks fill a near-square grid;
	// later rounds either reuse round-1 regions (Reuse) or append blocks
	// below a one-block gutter.
	n1 := p.ModulesInRound(1)
	bcols := 1
	for bcols*bcols < n1 {
		bcols++
	}
	strideW, strideH := bw+opt.ExpandSpacing, bh+opt.ExpandSpacing
	blockOrigin := func(block int) layout.Point {
		return layout.Point{X: (block % bcols) * strideW, Y: (block / bcols) * strideH}
	}

	// Closed-form tiles for round-1 qubit ids (allocated module-major,
	// register-minor by Build): tileOf[id] for ids below n1*qpm; later
	// ids have no closed-form tile.
	tileOf := make([]layout.Point, n1*qpm)
	for im := 0; im < n1; im++ {
		org := blockOrigin(im)
		for reg := 0; reg < qpm; reg++ {
			tileOf[im*qpm+reg] = layout.Point{X: org.X + offsets[reg].X, Y: org.Y + offsets[reg].Y}
		}
	}

	// 3. Generate the factory. With reuse, the assigner hands each later
	// module a spatially contiguous run of freed tiles (§VII.B.1's module
	// arrangement over reusable regions).
	params := p
	params.Barriers = !opt.NoBarriers
	params.Reuse = opt.Reuse
	if opt.Reuse {
		params.Assigner = func(round, moduleInRound, need int, pool []circuit.Qubit) []circuit.Qubit {
			byTile := append([]circuit.Qubit(nil), pool...)
			// Qubit ids keep their tiles across reuse chains, so ids
			// first allocated in round 1 always have a known tile. Ids
			// first allocated fresh in rounds >= 2 (possible at three or
			// more levels) get their tiles only after generation; sort
			// those to the back so modules prefer compact known regions.
			known := func(q circuit.Qubit) bool {
				return int(q) < len(tileOf)
			}
			sort.Slice(byTile, func(i, j int) bool {
				qi, qj := byTile[i], byTile[j]
				ki, kj := known(qi), known(qj)
				if ki != kj {
					return ki
				}
				if !ki {
					return qi < qj
				}
				a, b := tileOf[qi], tileOf[qj]
				// Block-major, then row-major inside the grid, keeps each
				// run compact.
				ba := (a.Y/strideH)*bcols + a.X/strideW
				bb := (b.Y/strideH)*bcols + b.X/strideW
				if ba != bb {
					return ba < bb
				}
				if a.Y != b.Y {
					return a.Y < b.Y
				}
				return a.X < b.X
			})
			// Build removes granted ids from the pool, so taking the head
			// of the block-major order hands each module the next compact
			// freed region.
			if need > len(byTile) {
				need = len(byTile)
			}
			return byTile[:need]
		}
	}
	f, err := bravyi.Build(params)
	if err != nil {
		return nil, err
	}

	// 4. Placement: round-1 ids by closed form; later fresh ids by
	// appended blocks; reused ids keep their tiles.
	pl := layout.NewPlacement(f.Circuit.NumQubits, 1, 1)
	maxX, maxY := 0, 0
	place := func(id circuit.Qubit, pt layout.Point) {
		pl.Set(int(id), pt)
		if pt.X > maxX {
			maxX = pt.X
		}
		if pt.Y > maxY {
			maxY = pt.Y
		}
	}
	for id, pt := range tileOf {
		place(circuit.Qubit(id), pt)
	}
	// Gutter row of empty tiles between round-1 grid and appended blocks.
	nextBlock := ((n1 + bcols - 1) / bcols) * bcols // start of next full block row
	extraBlockYOffset := bh                         // one empty block row as permutation gutter
	for _, r := range f.Rounds[1:] {
		for _, mi := range r.Modules {
			m := f.Modules[mi]
			regs := make([]circuit.Qubit, 0, qpm)
			regs = append(regs, m.Raw...)
			regs = append(regs, m.Anc...)
			regs = append(regs, m.Out...)
			fresh := make([]circuit.Qubit, 0, qpm)
			for _, q := range regs {
				if pl.At(int(q)) == layout.Unplaced {
					fresh = append(fresh, q)
				}
			}
			if len(fresh) == 0 {
				continue
			}
			org := blockOrigin(nextBlock)
			org.Y += extraBlockYOffset
			nextBlock++
			for i, q := range fresh {
				// Fresh registers adopt the block layout in register
				// order; when partially reused this still packs them.
				reg := i
				if len(fresh) == qpm {
					reg = regIndex(&m, q)
				}
				place(q, layout.Point{X: org.X + offsets[reg].X, Y: org.Y + offsets[reg].Y})
			}
		}
	}
	pl.W, pl.H = maxX+1, maxY+1
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("stitch: %w", err)
	}

	// 5. Port reassignment (§VII.B.2): within each previous-round module,
	// match output ports to consuming modules minimizing total Manhattan
	// wire length.
	if !opt.DisablePortReassign {
		if err := reassignAllPorts(f, pl); err != nil {
			return nil, err
		}
	}

	// 6. Intermediate hop routing (§VII.B.3).
	res := &Result{Factory: f, Placement: pl, BlockW: bw, BlockH: bh}
	if opt.Hops != NoHop && len(f.Wires) > 0 {
		hopCount, err := applyHopRouting(f, pl, opt, rng)
		if err != nil {
			return nil, err
		}
		res.HopWires = hopCount
	}
	return res, nil
}

// regIndex returns the register index (raw, anc, out order) of q in m.
func regIndex(m *bravyi.Module, q circuit.Qubit) int {
	for i, r := range m.Raw {
		if r == q {
			return i
		}
	}
	for i, a := range m.Anc {
		if a == q {
			return len(m.Raw) + i
		}
	}
	for i, o := range m.Out {
		if o == q {
			return len(m.Raw) + len(m.Anc) + i
		}
	}
	return 0
}

// reassignAllPorts runs the Hungarian matching for every module that
// feeds a later round. Modules are matched independently (each matching
// reads only placement tiles and rewrites only its own module's wires),
// so processing them in ascending module order — rather than the map
// order an earlier version used — changes nothing but determinism of
// the work schedule. The cost matrix is carved once and refilled per
// module.
func reassignAllPorts(f *bravyi.Factory, pl *layout.Placement) error {
	k := f.Params.K
	// Group wires by source module.
	perModule := make([][]bravyi.Wire, len(f.Modules))
	for _, w := range f.Wires {
		perModule[w.FromModule] = append(perModule[w.FromModule], w)
	}
	cost := make([][]float64, k)
	backing := make([]float64, k*k)
	for pi := range cost {
		cost[pi] = backing[pi*k : (pi+1)*k : (pi+1)*k]
	}
	perm := make([]int, k)
	for pm, wires := range perModule {
		if len(wires) == 0 {
			continue // final-round module: feeds nothing
		}
		if len(wires) != k {
			// A module's k ports feed exactly k wires by construction;
			// anything else indicates corrupted wiring.
			return fmt.Errorf("stitch: module %d has %d wires, want %d", pm, len(wires), k)
		}
		sort.Slice(wires, func(i, j int) bool { return wires[i].FromPort < wires[j].FromPort })
		outs := f.Modules[pm].Out
		for pi := range cost {
			src := pl.At(int(outs[pi]))
			for wi, w := range wires {
				dst := pl.At(int(f.Modules[w.ToModule].Raw[w.ToSlot]))
				cost[pi][wi] = float64(layout.Manhattan(src, dst))
			}
		}
		match, _, err := assign.Hungarian(cost)
		if err != nil {
			return err
		}
		// match[pi] = wi means port pi serves wire wi; wires[wi] currently
		// uses port wires[wi].FromPort == wi (sorted), so the permutation
		// sending old port wi to new port pi is the inverse of match.
		for pi, wi := range match {
			perm[wi] = pi
		}
		if err := f.ReassignPorts(pm, perm); err != nil {
			return err
		}
	}
	return nil
}
