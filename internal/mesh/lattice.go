package mesh

import "magicstate/internal/layout"

// Lattice is the routing-cell grid derived from a tile grid: tile (x, y)
// occupies cell (2x+1, 2y+1); every other cell is a routing channel.
type Lattice struct {
	TileW, TileH int // tile grid dimensions
	CW, CH       int // cell grid dimensions: 2W+1 x 2H+1
	isTile       []bool
	// ports[y*TileW+x] lists the channel cells adjacent to tile (x, y),
	// all carved from one backing array. The simulator reads these slices
	// on every braid start, so they are precomputed once per lattice and
	// must be treated as read-only.
	ports [][]int
}

// NewLattice builds the lattice for a W x H tile grid.
func NewLattice(tileW, tileH int) *Lattice {
	l := &Lattice{TileW: tileW, TileH: tileH, CW: 2*tileW + 1, CH: 2*tileH + 1}
	l.isTile = make([]bool, l.CW*l.CH)
	for y := 0; y < tileH; y++ {
		for x := 0; x < tileW; x++ {
			l.isTile[l.CellIndex(2*x+1, 2*y+1)] = true
		}
	}
	l.ports = make([][]int, tileW*tileH)
	backing := make([]int, 0, 4*tileW*tileH)
	var nbuf [4]int
	for y := 0; y < tileH; y++ {
		for x := 0; x < tileW; x++ {
			start := len(backing)
			for _, c := range l.NeighborCells(l.CellIndex(2*x+1, 2*y+1), nbuf[:0]) {
				if !l.isTile[c] {
					backing = append(backing, c)
				}
			}
			l.ports[y*tileW+x] = backing[start:len(backing):len(backing)]
		}
	}
	return l
}

// PortsOf returns the cached channel cells adjacent to tile pt. The
// returned slice is shared and must not be modified; use TilePorts for a
// caller-owned copy.
func (l *Lattice) PortsOf(pt layout.Point) []int {
	return l.ports[pt.Y*l.TileW+pt.X]
}

// Cells returns the total cell count.
func (l *Lattice) Cells() int { return l.CW * l.CH }

// CellIndex returns the dense index of cell (cx, cy).
func (l *Lattice) CellIndex(cx, cy int) int { return cy*l.CW + cx }

// TileCell returns the cell index of tile pt.
func (l *Lattice) TileCell(pt layout.Point) int {
	return l.CellIndex(2*pt.X+1, 2*pt.Y+1)
}

// IsTile reports whether cell index ci is a logical qubit tile.
func (l *Lattice) IsTile(ci int) bool { return l.isTile[ci] }

// NeighborCells appends the 4-neighborhood of cell ci to buf and returns
// it. Out-of-grid neighbors are omitted.
func (l *Lattice) NeighborCells(ci int, buf []int) []int {
	cx, cy := ci%l.CW, ci/l.CW
	if cx > 0 {
		buf = append(buf, ci-1)
	}
	if cx < l.CW-1 {
		buf = append(buf, ci+1)
	}
	if cy > 0 {
		buf = append(buf, ci-l.CW)
	}
	if cy < l.CH-1 {
		buf = append(buf, ci+l.CW)
	}
	return buf
}

// TilePorts appends the channel cells adjacent to a tile (its braid entry
// points) to buf and returns it.
func (l *Lattice) TilePorts(pt layout.Point, buf []int) []int {
	return append(buf, l.PortsOf(pt)...)
}
