package resource

import "magicstate/internal/bravyi"

// Volume is a space-time cost: logical tile area times cycles, the metric
// of Table I and Fig. 10e/10f.
type Volume struct {
	Area    int // logical tiles (bounding box of the layout)
	Latency int // cycles
}

// SpaceTime returns Area x Latency in qubit-cycles.
func (v Volume) SpaceTime() float64 { return float64(v.Area) * float64(v.Latency) }

// PerState normalizes the volume by the factory's capacity, giving the
// cost per distilled magic state.
func (v Volume) PerState(p bravyi.Params) float64 {
	cap := p.Capacity()
	if cap == 0 {
		return 0
	}
	return v.SpaceTime() / float64(cap)
}

// ExpectedRunsPerSuccess returns the expected number of factory executions
// needed per successful batch given the first-order module success
// probability compounded over all modules, with the checkpoint structure
// of [20] discarding failed groups. It is a throughput derating factor for
// provisioning estimates (examples/tbudget).
func ExpectedRunsPerSuccess(p bravyi.Params, em ErrorModel) float64 {
	errs := em.RoundErrors(p)
	succ := 1.0
	for r := 1; r <= p.Levels; r++ {
		sm := p.SuccessProbability(errs[r-1])
		// All modules of the round must pass for the batch to proceed at
		// full capacity; compounding per module.
		for i := 0; i < p.ModulesInRound(r); i++ {
			succ *= sm
		}
	}
	if succ <= 0 {
		return 1e18
	}
	return 1 / succ
}
