package stitch

import (
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/resource"
)

func build(t *testing.T, p bravyi.Params, opt Options) *Result {
	t.Helper()
	r, err := Build(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuildSingleLevelIsBlockEmbedding(t *testing.T) {
	r := build(t, bravyi.Params{K: 8, Levels: 1}, Options{Seed: 1})
	if err := r.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Placement.Area() != 53 {
		t.Errorf("area = %d, want 53", r.Placement.Area())
	}
	if r.BlockW*r.BlockH < 53 {
		t.Errorf("block %dx%d too small", r.BlockW, r.BlockH)
	}
	if r.HopWires != 0 {
		t.Error("single level has no wires to hop")
	}
}

func TestBuildTwoLevelNoReuse(t *testing.T) {
	r := build(t, bravyi.Params{K: 2, Levels: 2}, Options{Seed: 2, Hops: NoHop})
	if err := r.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.Placement.Area(); got != 16*23 {
		t.Errorf("area = %d, want %d", got, 16*23)
	}
	if err := r.Factory.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTwoLevelReuseKeepsArea(t *testing.T) {
	r := build(t, bravyi.Params{K: 2, Levels: 2}, Options{Seed: 3, Reuse: true, Hops: NoHop})
	if err := r.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.Placement.Area(); got != 14*23 {
		t.Errorf("reuse area = %d, want %d (round-1 footprint only)", got, 14*23)
	}
}

func TestPortReassignmentShortensWires(t *testing.T) {
	with := build(t, bravyi.Params{K: 4, Levels: 2}, Options{Seed: 4, Hops: NoHop})
	without := build(t, bravyi.Params{K: 4, Levels: 2}, Options{Seed: 4, Hops: NoHop, DisablePortReassign: true})
	total := func(r *Result) int {
		sum := 0
		for _, w := range r.Factory.Wires {
			src := r.Placement.At(int(r.Factory.Modules[w.FromModule].Out[w.FromPort]))
			dst := r.Placement.At(int(r.Factory.Modules[w.ToModule].Raw[w.ToSlot]))
			sum += layout.Manhattan(src, dst)
		}
		return sum
	}
	if total(with) > total(without) {
		t.Errorf("port reassignment lengthened wires: %d > %d", total(with), total(without))
	}
}

func TestPortReassignmentKeepsWiringBijective(t *testing.T) {
	r := build(t, bravyi.Params{K: 3, Levels: 2}, Options{Seed: 5, Hops: NoHop})
	f := r.Factory
	used := make(map[[2]int]int)
	for _, w := range f.Wires {
		used[[2]int{w.FromModule, w.FromPort}]++
		src := f.Modules[w.FromModule].Out[w.FromPort]
		if f.Circuit.Gates[w.GateIdx].Control != src {
			t.Fatalf("wire %+v control mismatch after reassignment", w)
		}
	}
	for _, v := range used {
		if v != 1 {
			t.Fatal("port used more than once after reassignment")
		}
	}
}

func TestHopsRewriteMoves(t *testing.T) {
	p := bravyi.Params{K: 2, Levels: 2}
	nohop := build(t, p, Options{Seed: 6, Hops: NoHop})
	hop := build(t, p, Options{Seed: 6, Hops: AnnealedMidpointHop})
	if hop.HopWires == 0 {
		t.Fatal("no wires hopped")
	}
	movesDirect := nohop.Factory.Circuit.CountKind(circuit.KindMove)
	movesHopped := hop.Factory.Circuit.CountKind(circuit.KindMove)
	if movesHopped != movesDirect+hop.HopWires {
		t.Errorf("moves = %d, want %d + %d hops", movesHopped, movesDirect, hop.HopWires)
	}
	if err := hop.Factory.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := hop.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hops reuse dead tiles: area unchanged.
	if hop.Placement.Area() != nohop.Placement.Area() {
		t.Errorf("hops changed area: %d vs %d", hop.Placement.Area(), nohop.Placement.Area())
	}
}

func TestAllHopModesSimulate(t *testing.T) {
	p := bravyi.Params{K: 2, Levels: 2}
	for _, mode := range []HopMode{NoHop, RandomHop, AnnealedRandomHop, AnnealedMidpointHop} {
		r := build(t, p, Options{Seed: 7, Hops: mode, Reuse: true})
		res, err := mesh.Simulate(r.Factory.Circuit, r.Placement, mesh.Config{})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Latency <= 0 {
			t.Fatalf("%v: zero latency", mode)
		}
		if _, err := PermutationLatency(r.Factory, res.Start, res.End, 2); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestHopModeStrings(t *testing.T) {
	names := map[HopMode]string{
		NoHop: "no-hop", RandomHop: "random-hop",
		AnnealedRandomHop: "annealed-random-hop", AnnealedMidpointHop: "annealed-midpoint-hop",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d: %q != %q", m, m.String(), want)
		}
	}
}

func TestPermutationLatencyErrors(t *testing.T) {
	r := build(t, bravyi.Params{K: 2, Levels: 2}, Options{Seed: 8, Hops: NoHop})
	if _, err := PermutationLatency(r.Factory, nil, nil, 1); err == nil {
		t.Error("round 1 should error")
	}
	if _, err := PermutationLatency(r.Factory, nil, nil, 3); err == nil {
		t.Error("round 3 of a 2-level factory should error")
	}
}

func TestStitchBeatsLinearOnTwoLevel(t *testing.T) {
	p := bravyi.Params{K: 4, Levels: 2}
	hs := build(t, p, Options{Seed: 9, Reuse: true})
	rhs, err := mesh.Simulate(hs.Factory.Circuit, hs.Placement, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := bravyi.Build(bravyi.Params{K: 4, Levels: 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	rlin, err := mesh.Simulate(lf.Circuit, layout.Linear(lf), mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hsVol := rhs.Volume().SpaceTime()
	linVol := rlin.Volume().SpaceTime()
	if hsVol >= linVol {
		t.Errorf("HS volume %.3g should beat Line(NR) %.3g", hsVol, linVol)
	}
	// HS should also stay within a sane multiple of the critical volume.
	cm := resource.DefaultCost()
	crit := float64(cm.CriticalPath(hs.Factory.Circuit)) * float64(hs.Placement.Area())
	if hsVol > 4*crit {
		t.Errorf("HS volume %.3g too far above critical %.3g", hsVol, crit)
	}
}

func TestApplyHopsValidation(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := bravyi.ApplyHops(f, map[int]circuit.Qubit{-1: 0}); err == nil {
		t.Error("negative wire index should fail")
	}
	if err := bravyi.ApplyHops(f, map[int]circuit.Qubit{0: circuit.Qubit(f.Circuit.NumQubits)}); err == nil {
		t.Error("out-of-range hop qubit should fail")
	}
	if err := bravyi.ApplyHops(f, nil); err != nil {
		t.Error("empty hop set should be a no-op")
	}
}

func TestStitchThreeLevelReuse(t *testing.T) {
	// Deep reuse stitching: ids reused across rounds keep their tiles, so
	// the assigner stays placement-aware for them; only later-round fresh
	// ids sort to the back of the pool. The result must be a valid,
	// simulable mapping that still beats the linear baseline.
	r := build(t, bravyi.Params{K: 2, Levels: 3}, Options{Seed: 1, Reuse: true})
	if err := r.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Factory.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := mesh.Simulate(r.Factory.Circuit, r.Placement, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Latency <= 0 {
		t.Error("zero latency")
	}
	lin, err := bravyi.Build(bravyi.Params{K: 2, Levels: 3, Reuse: true, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	simLin, err := mesh.Simulate(lin.Circuit, layout.Linear(lin), mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Latency >= simLin.Latency {
		t.Errorf("three-level stitching latency %d not below linear %d", sim.Latency, simLin.Latency)
	}
}

func TestStitchThreeLevelNoReuse(t *testing.T) {
	r := build(t, bravyi.Params{K: 2, Levels: 3}, Options{Seed: 1, Hops: NoHop})
	if err := r.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Factory.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3-level factory: rounds of 196, 28, 4 modules.
	if got := len(r.Factory.Modules); got != 196+28+4 {
		t.Errorf("modules = %d, want 228", got)
	}
	res, err := mesh.Simulate(r.Factory.Circuit, r.Placement, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Error("zero latency")
	}
}

func TestExpandSpacingTradesAreaForLatency(t *testing.T) {
	// §IX "Area Expansion": extra routing space between blocks should not
	// slow the factory down, and typically speeds the permutation up.
	p := bravyi.Params{K: 4, Levels: 2}
	tight := build(t, p, Options{Seed: 1, Hops: NoHop})
	roomy := build(t, p, Options{Seed: 1, Hops: NoHop, ExpandSpacing: 2})
	if err := roomy.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	// Occupied-tile area is identical (spacing adds empty tiles only)...
	if tight.Placement.Area() != roomy.Placement.Area() {
		t.Errorf("spacing changed occupied area: %d vs %d",
			tight.Placement.Area(), roomy.Placement.Area())
	}
	// ...but the hull grows.
	if roomy.Placement.HullArea() <= tight.Placement.HullArea() {
		t.Errorf("spacing should grow the hull: %d vs %d",
			roomy.Placement.HullArea(), tight.Placement.HullArea())
	}
	rt, err := mesh.Simulate(tight.Factory.Circuit, tight.Placement, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := mesh.Simulate(roomy.Factory.Circuit, roomy.Placement, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(rr.Latency) > 1.1*float64(rt.Latency) {
		t.Errorf("extra area should not slow execution: %d vs %d", rr.Latency, rt.Latency)
	}
}
