package mesh

import (
	"math/rand"
	"strings"
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/layout"
)

func recordedRun(t testing.TB) (*Result, *layout.Placement) {
	t.Helper()
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := layout.Random(f.Circuit.NumQubits, rand.New(rand.NewSource(4)))
	res, err := Simulate(f.Circuit, pl, Config{RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, pl
}

func TestCongestionMapRequiresRecordedPaths(t *testing.T) {
	_, pl := recordedRun(t)
	if _, _, err := CongestionMap(&Result{}, pl); err == nil {
		t.Error("unrecorded run accepted")
	}
}

func TestCongestionMapAccumulates(t *testing.T) {
	res, pl := recordedRun(t)
	heat, lat, err := CongestionMap(res, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(heat) != lat.Cells() {
		t.Fatalf("heat covers %d cells, lattice has %d", len(heat), lat.Cells())
	}
	// Total heat equals sum over braids of pathlen x held cycles.
	want := 0
	for gi, path := range res.Paths {
		if len(path) == 0 {
			continue
		}
		want += len(path) * (res.End[gi] - res.Start[gi])
	}
	got := 0
	for _, h := range heat {
		got += h
	}
	if got != want {
		t.Errorf("total heat %d, want %d", got, want)
	}
	if got == 0 {
		t.Error("no congestion recorded for a braid-heavy circuit")
	}
}

func TestRenderCongestion(t *testing.T) {
	res, pl := recordedRun(t)
	heat, lat, err := CongestionMap(res, pl)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderCongestion(heat, lat, 0, 0)
	if !strings.Contains(out, "#") {
		t.Error("no tiles rendered")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != lat.CH {
		t.Errorf("rendered %d rows, lattice has %d", len(lines), lat.CH)
	}
	for _, ln := range lines {
		if len(ln) != lat.CW {
			t.Fatalf("row width %d, want %d", len(ln), lat.CW)
		}
		for _, ch := range ln {
			if ch != '#' && ch != '.' && (ch < '1' || ch > '9') {
				t.Fatalf("unexpected rune %q in render", ch)
			}
		}
	}
	// Clipping annotates.
	clipped := RenderCongestion(heat, lat, 3, 3)
	if !strings.Contains(clipped, "clipped") {
		t.Error("clipped render missing note")
	}
}

func TestHottestCells(t *testing.T) {
	res, pl := recordedRun(t)
	heat, lat, err := CongestionMap(res, pl)
	if err != nil {
		t.Fatal(err)
	}
	top := HottestCells(heat, lat, 5)
	if len(top) == 0 {
		t.Fatal("no hot cells")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cycles > top[i-1].Cycles {
			t.Errorf("hot cells not descending: %v", top)
		}
	}
	for _, hc := range top {
		if lat.IsTile(hc.Cell) {
			t.Errorf("tile cell %d reported as channel hotspot", hc.Cell)
		}
	}
	// Asking for more than exist caps gracefully.
	all := HottestCells(heat, lat, 1<<20)
	if len(all) == 0 || len(all) > lat.Cells() {
		t.Errorf("HottestCells cap broken: %d", len(all))
	}
}

func TestSimulateRouteModes(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := layout.Random(f.Circuit.NumQubits, rand.New(rand.NewSource(11)))
	latencies := map[RouteMode]int{}
	for _, mode := range []RouteMode{RouteXY, RouteBox, RouteAdaptive} {
		res, err := Simulate(f.Circuit, pl, Config{Mode: mode, RecordPaths: true})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := res.CheckNoOverlaps(); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
		latencies[mode] = res.Latency
		if v := res.Volume(); v.SpaceTime() != float64(res.Area)*float64(res.Latency) {
			t.Errorf("mode %d: Volume inconsistent", mode)
		}
	}
	// Detouring routers relieve congestion: adaptive must not be slower
	// than the strict XY braids on a random (congested) placement.
	if latencies[RouteAdaptive] > latencies[RouteXY] {
		t.Errorf("adaptive %d slower than XY %d", latencies[RouteAdaptive], latencies[RouteXY])
	}
}
