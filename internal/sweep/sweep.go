package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"magicstate/internal/core"
	"magicstate/internal/store"
	"magicstate/internal/sweep/memo"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds pool concurrency; <= 0 means runtime.GOMAXPROCS(0).
	// 1 reproduces serial execution exactly.
	Workers int
	// Progress, when set, observes completion: it is called once per
	// point as the point finishes — successfully, with an error, or
	// skipped after an earlier failure — with the running done count
	// and the batch total. A successful sweep always reaches done ==
	// total; a failing sweep may stop short (the serial path returns at
	// the first error). Calls are serialized by the engine; the
	// callback itself need not be safe for concurrent use.
	Progress func(done, total int)
	// CacheLimit bounds the memo cache entry count (0 = memo.DefaultLimit).
	CacheLimit int
	// Store, when set, adds a durable cache tier beneath the in-memory
	// memo: RunOne consults memory first, then the store, and persists
	// freshly computed cacheable results. The engine never closes the
	// store — its owner does.
	Store *store.Store
	// Remote, when set, adds a cluster tier beneath the store: a point
	// missed by every local tier is offered to Remote (in practice the
	// fabric's forward-to-owner call) before being computed here.
	// ok=false means "compute locally" — the engine treats the remote
	// tier as best-effort and never fails a point on its account. A
	// remote result is persisted like a local one.
	Remote func(ctx context.Context, cfg core.Config) (*core.Report, bool)
}

// Engine is a reusable batch executor. An Engine is safe for concurrent
// use; its memo cache persists across Run calls, so successive artifacts
// in one process share grid points.
type Engine struct {
	workers    int
	progress   func(done, total int)
	progMu     sync.Mutex
	cache      *memo.Cache
	stageCache *memo.Cache    // stage artifacts (see stages.go)
	stage      *stageCounters // stage-tier traffic, shared via Derive
	store      *store.Store
	remote     func(ctx context.Context, cfg core.Config) (*core.Report, bool)
	diskHits   *atomic.Int64 // shared by every engine Derive produces
	remoteHits *atomic.Int64 // points served by the remote tier
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:    w,
		progress:   opts.Progress,
		cache:      memo.New(opts.CacheLimit),
		stageCache: memo.New(stageCacheLimit),
		stage:      new(stageCounters),
		store:      opts.Store,
		remote:     opts.Remote,
		diskHits:   new(atomic.Int64),
		remoteHits: new(atomic.Int64),
	}
}

// Derive returns an engine that shares e's memo cache, result store and
// disk-hit counter but runs with its own worker width and progress
// callback. It is how one process serves many differently-shaped
// callers from a single cache tier: the msfud service derives a
// width-capped engine per request (opts.Workers above e's width is
// clamped down to it, so a request can narrow the shared pool but
// never widen it).
func (e *Engine) Derive(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 || w > e.workers {
		w = e.workers
	}
	return &Engine{
		workers:    w,
		progress:   opts.Progress,
		cache:      e.cache,
		stageCache: e.stageCache,
		stage:      e.stage,
		store:      e.store,
		remote:     e.remote,
		diskHits:   e.diskHits,
		remoteHits: e.remoteHits,
	}
}

// Workers reports the pool width.
func (e *Engine) Workers() int { return e.workers }

// CacheStats reports memo cache hits and misses so far (shared across
// derived engines).
func (e *Engine) CacheStats() (hits, misses int64) { return e.cache.Stats() }

// Store returns the engine's durable cache tier (nil when the engine is
// memory-only).
func (e *Engine) Store() *store.Store { return e.store }

// DiskHits reports how many points were served from the durable tier
// instead of being recomputed, across this engine and every engine
// sharing its cache via Derive.
func (e *Engine) DiskHits() int64 { return e.diskHits.Load() }

// RemoteHits reports how many points were served by the remote (cluster)
// tier instead of being computed here, across this engine and every
// engine sharing its cache via Derive.
func (e *Engine) RemoteHits() int64 { return e.remoteHits.Load() }

// Run executes every Config point and returns the reports in input
// order. Identical points are computed once (reports are shared — treat
// them as read-only). On failure Run stops dispatching further points
// and returns the lowest-indexed error among points that ran.
func (e *Engine) Run(ctx context.Context, cfgs []core.Config) ([]*core.Report, error) {
	return Map(ctx, e, cfgs, func(_ int, cfg core.Config) (*core.Report, error) {
		return e.RunOne(cfg)
	})
}

// RunOne executes a single Config through the engine's cache tier:
// the in-memory memo answers repeats within the process, the durable
// store (when the engine has one) answers repeats across processes, and
// only a miss on both computes — persisting the fresh result so no
// process ever computes this point again. It is how grid stages that
// need per-point error context (or mix pipeline runs with other work)
// still share the cache: call RunOne from inside a Map function instead
// of core.Run.
func (e *Engine) RunOne(cfg core.Config) (*core.Report, error) {
	return e.RunOneContext(context.Background(), cfg)
}

// RunOneContext is RunOne with cooperative cancellation: ctx reaches
// core.RunContext, which checks it at pipeline stage boundaries, so a
// caller that goes away stops costing compute. When concurrent callers
// share one computation through the memo, the context that counts is
// the first caller's — a cancellation is returned to every waiter but
// never cached (the memo drops context errors), so the next request
// for the point recomputes instead of inheriting a dead caller's fate.
// Long-running services wanting N callers to keep a shared computation
// alive until the last one leaves should pass a context with that
// lifetime (see cmd/msfud's in-flight table).
func (e *Engine) RunOneContext(ctx context.Context, cfg core.Config) (*core.Report, error) {
	v, err := e.cache.Do(cfg, func() (any, error) {
		if e.store != nil {
			// The context-aware lookup reaches through to cluster peers on
			// a local miss when a fetcher is wired; without one it is the
			// plain local lookup.
			if rep, ok := e.store.LookupReportContext(ctx, cfg); ok {
				e.diskHits.Add(1)
				return rep, nil
			}
		}
		if e.remote != nil && store.Cacheable(cfg) {
			if rep, ok := e.remote(ctx, cfg); ok {
				e.remoteHits.Add(1)
				if e.store != nil {
					_ = e.store.PutReport(cfg, rep)
				}
				return rep, nil
			}
		}
		// A full miss computes through the stage tier: each pipeline
		// stage resolved memory → disk → compute (see stages.go), so a
		// point sharing upstream axes with earlier work replays the
		// shared artifacts instead of recomputing them. The composition
		// is byte-identical to core.RunContext.
		rep, err := e.runStaged(ctx, cfg)
		if err != nil {
			return nil, err
		}
		if e.store != nil {
			// Persistence is an optimization, not a correctness step: a
			// full disk fails the Put but the sweep still has its result,
			// so the error is dropped rather than failing the point.
			_ = e.store.PutReport(cfg, rep)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Report), nil
}

// PeekOne answers cfg from the cache tier without ever computing (or
// waiting on an in-flight computation): a completed in-memory memo
// entry first, the durable store second. It is the admission-free fast
// path for overloaded services — a point already paid for is served
// even when no compute budget remains.
func (e *Engine) PeekOne(cfg core.Config) (*core.Report, bool) {
	if v, err, ok := e.cache.Peek(cfg); ok && err == nil {
		if rep, isRep := v.(*core.Report); isRep {
			return rep, true
		}
	}
	if e.store != nil {
		if rep, ok := e.store.LookupReport(cfg); ok {
			e.diskHits.Add(1)
			return rep, true
		}
	}
	return nil, false
}

// tick reports one completed point.
func (e *Engine) tick(done *int, total int) {
	if e.progress == nil {
		return
	}
	e.progMu.Lock()
	*done++
	e.progress(*done, total)
	e.progMu.Unlock()
}

// Map runs fn over items on e's worker pool and returns the results in
// input order. It is the engine's generic entry point for grid stages
// that are not plain core.Config points (Monte-Carlo yield runs, stitch
// hop sweeps, protocol provisioning, the planner's candidate scan). fn
// must be safe for concurrent invocation and deterministic per item if
// callers rely on reproducible output. On failure Map stops dispatching
// further items and returns the lowest-indexed error among items that
// ran (a serial run reports exactly the first failure).
func Map[T, R any](ctx context.Context, e *Engine, items []T, fn func(int, T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}

	workers := e.workers
	if workers > len(items) {
		workers = len(items)
	}
	var done int

	if workers <= 1 {
		// Serial fast path: identical control flow to the loops this
		// engine replaced, including stopping at the first error.
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(i, it)
			if err != nil {
				return nil, err
			}
			results[i] = r
			e.tick(&done, len(items))
		}
		return results, nil
	}

	errs := make([]error, len(items))
	idx := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				switch {
				case failed.Load():
					// Another point already failed; don't burn the rest
					// of the grid's wall-clock on results that will be
					// discarded.
					errs[i] = errSkipped
				case ctx.Err() != nil:
					errs[i] = ctx.Err()
					failed.Store(true)
				default:
					r, err := fn(i, items[i])
					if err != nil {
						errs[i] = err
						failed.Store(true)
					} else {
						results[i] = r
					}
				}
				e.tick(&done, len(items))
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Report the lowest-indexed point that actually ran and failed
	// (points skipped after the first failure never produced an error
	// of their own).
	for _, err := range errs {
		if err != nil && err != errSkipped {
			return nil, err
		}
	}
	return results, nil
}

// errSkipped marks grid points abandoned because an earlier point
// already failed; it is never returned to callers.
var errSkipped = errors.New("sweep: point skipped after earlier failure")
