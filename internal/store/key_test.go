package store

import (
	"reflect"
	"testing"

	"magicstate/internal/core"
	"magicstate/internal/force"
	"magicstate/internal/resource"
	"magicstate/internal/stitch"
)

func TestKeyOfPinnedDigest(t *testing.T) {
	// The canonical encoding must be stable across processes and
	// releases: a silent change would orphan every existing store. This
	// digest was produced by keyFormatVersion 3 (which added the
	// Workload, WorkloadSource and Defects fields); if the encoding must
	// change, bump keyFormatVersion and re-pin.
	const want = "91dd184a359094e5ea284fad4ec32da5c9e2d806d068310b804809f44b67a4de"
	got := KeyOf(core.Config{K: 4, Levels: 2, Reuse: true, Strategy: core.StrategyStitch, Seed: 7}).String()
	if got != want {
		t.Fatalf("KeyOf digest drifted:\n got %s\nwant %s\n(bump keyFormatVersion if the encoding changed on purpose)", got, want)
	}
}

func TestKeyOfDistinguishesEveryField(t *testing.T) {
	base := core.Config{K: 4, Levels: 2, Seed: 1}
	mutations := map[string]core.Config{}
	add := func(name string, mutate func(*core.Config)) {
		c := base
		mutate(&c)
		mutations[name] = c
	}
	add("K", func(c *core.Config) { c.K = 6 })
	add("Levels", func(c *core.Config) { c.Levels = 1 })
	add("Reuse", func(c *core.Config) { c.Reuse = true })
	add("NoBarriers", func(c *core.Config) { c.NoBarriers = true })
	add("Strategy", func(c *core.Config) { c.Strategy = core.StrategyForceDirected })
	add("Seed", func(c *core.Config) { c.Seed = 2 })
	add("Cost", func(c *core.Config) { c.Cost = resource.CostModel{CNOT: 21} })
	add("MeshMode", func(c *core.Config) { c.MeshMode = 1 })
	add("RouteMargin", func(c *core.Config) { c.RouteMargin = 3 })
	add("Style", func(c *core.Config) { c.Style = 1 })
	add("Distance", func(c *core.Config) { c.Distance = 11 })
	add("RecordPaths", func(c *core.Config) { c.RecordPaths = true })
	add("FD", func(c *core.Config) { c.FD = force.Options{Iterations: 9} })
	add("FD.Restarts", func(c *core.Config) { c.FD.Restarts = 2 })
	add("Stitch", func(c *core.Config) { c.Stitch = stitch.Options{HopIters: 9} })
	add("Workload", func(c *core.Config) { c.Workload = "random" })
	add("WorkloadSource", func(c *core.Config) { c.WorkloadSource = "q=8;layers=2" })
	add("Defects", func(c *core.Config) { c.Defects = "1,1" })

	baseKey := KeyOf(base)
	seen := map[Key]string{baseKey: "base"}
	for name, cfg := range mutations {
		k := KeyOf(cfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s", name, prev)
		}
		seen[k] = name
	}

	// RestartWorkers must NOT change the key: it cannot change the
	// result, and keying on it would fracture the store by machine width.
	workers := base
	workers.FD.RestartWorkers = 8
	if KeyOf(workers) != baseKey {
		t.Error("FD.RestartWorkers changed the key; it is result-invariant and must stay excluded")
	}
}

// TestKeyGuardsConfigFields pins the exact field sets of core.Config
// and its nested option structs. If this test fails, a field was added
// (or renamed) without teaching KeyOf about it — extend the canonical
// encoding in key.go, bump keyFormatVersion, and update the lists here.
// Skipping that step would make the store serve stale results for
// configs that differ only in the new field.
func TestKeyGuardsConfigFields(t *testing.T) {
	check := func(v any, want []string) {
		t.Helper()
		rt := reflect.TypeOf(v)
		var got []string
		for i := 0; i < rt.NumField(); i++ {
			got = append(got, rt.Field(i).Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s fields = %v, want %v — update KeyOf and keyFormatVersion", rt, got, want)
		}
	}
	check(core.Config{}, []string{
		"K", "Levels", "Reuse", "NoBarriers", "Strategy", "Seed", "Cost",
		"MeshMode", "RouteMargin", "Style", "Distance", "RecordPaths", "FD", "Stitch",
		"Workload", "WorkloadSource", "Defects",
	})
	check(resource.CostModel{}, []string{"Prep", "H", "Meas", "CNOT", "CXX", "Inject", "Move"})
	// RestartWorkers is in this guard list but intentionally absent from
	// KeyOf: it is a pure throughput knob that cannot affect results.
	check(force.Options{}, []string{
		"Iterations", "Seed", "WAttract", "WRepulse", "WDipole",
		"CostSample", "MarginRows", "DisableDipole", "DisableCommunity",
		"Restarts", "RestartWorkers",
	})
	check(stitch.Options{}, []string{
		"Seed", "Reuse", "Hops", "HopIters", "DisablePortReassign",
		"ExpandSpacing", "NoBarriers",
	})
}

func TestCacheable(t *testing.T) {
	if !Cacheable(core.Config{K: 4}) {
		t.Fatal("plain config should be cacheable")
	}
	if Cacheable(core.Config{K: 4, RecordPaths: true}) {
		t.Fatal("RecordPaths config must not be cacheable")
	}
}
