package experiments

import (
	"context"
	"fmt"

	"magicstate/internal/bravyi"
	"magicstate/internal/core"
	"magicstate/internal/mesh"
	"magicstate/internal/stitch"
	"magicstate/internal/sweep"
)

// Fig9ReuseRow is one capacity point of Fig. 9a/9b: the relative volume
// difference (NR - R) / NR between the no-reuse and reuse protocols for
// each strategy. Positive values mean reuse wins.
type Fig9ReuseRow struct {
	Capacity                 int
	LineDiff, FDDiff, GPDiff float64
}

// fig9Strategies are the mappers of Fig. 9a/9b, in column order.
var fig9Strategies = []core.Strategy{core.StrategyLinear, core.StrategyForceDirected, core.StrategyGraphPartition}

// Fig9Reuse reproduces Fig. 9a/9b on two-level factories: the capacity x
// strategy x reuse grid runs on the sweep engine, then each (capacity,
// strategy) pair's NR/R reports reduce to a differential.
func Fig9Reuse(capacities []int, seed int64) ([]Fig9ReuseRow, error) {
	type point struct {
		capacity int
		strategy core.Strategy
		reuse    bool
	}
	var pts []point
	for _, c := range capacities {
		for _, s := range fig9Strategies {
			for _, reuse := range []bool{false, true} {
				pts = append(pts, point{capacity: c, strategy: s, reuse: reuse})
			}
		}
	}
	reps, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (*core.Report, error) {
		rep, err := runCapacity(pt.capacity, 2, pt.strategy, pt.reuse, seed)
		if err != nil {
			policy := "NR"
			if pt.reuse {
				policy = "R"
			}
			return nil, fmt.Errorf("fig9 cap %d %v %s: %w", pt.capacity, pt.strategy, policy, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig9ReuseRow
	i := 0
	for _, c := range capacities {
		row := Fig9ReuseRow{Capacity: c}
		for _, s := range fig9Strategies {
			nr, r := reps[i], reps[i+1]
			i += 2
			diff := (nr.Volume - r.Volume) / nr.Volume
			switch s {
			case core.StrategyLinear:
				row.LineDiff = diff
			case core.StrategyForceDirected:
				row.FDDiff = diff
			case core.StrategyGraphPartition:
				row.GPDiff = diff
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9HopsRow is one capacity point of Fig. 9d: the inter-round
// permutation-step latency under each hop routing mode, within the
// hierarchically stitched design.
type Fig9HopsRow struct {
	Capacity         int
	NoHop            int
	RandomHop        int
	AnnealedRandom   int
	AnnealedMidpoint int
}

// fig9HopModes are the permutation routing modes of Fig. 9c/9d.
var fig9HopModes = []stitch.HopMode{stitch.NoHop, stitch.RandomHop, stitch.AnnealedRandomHop, stitch.AnnealedMidpointHop}

// Fig9Hops reproduces Fig. 9c/9d on two-level factories with reuse. The
// capacity x hop-mode grid runs on the sweep engine; each point builds
// the stitched factory, simulates it, and extracts the permutation
// window.
func Fig9Hops(capacities []int, seed int64) ([]Fig9HopsRow, error) {
	type point struct {
		capacity int
		k        int
		mode     stitch.HopMode
	}
	var pts []point
	for _, c := range capacities {
		k, err := kForCapacity(c, 2)
		if err != nil {
			return nil, err
		}
		for _, mode := range fig9HopModes {
			pts = append(pts, point{capacity: c, k: k, mode: mode})
		}
	}
	perms, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (int, error) {
		res, err := stitch.Build(bravyi.Params{K: pt.k, Levels: 2, Barriers: true},
			stitch.Options{Seed: seed, Reuse: true, Hops: pt.mode})
		if err != nil {
			return 0, fmt.Errorf("fig9d cap %d %v: %w", pt.capacity, pt.mode, err)
		}
		sim, err := mesh.Simulate(res.Factory.Circuit, res.Placement, mesh.Config{})
		if err != nil {
			return 0, err
		}
		return stitch.PermutationLatency(res.Factory, sim.Start, sim.End, 2)
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig9HopsRow
	i := 0
	for _, c := range capacities {
		row := Fig9HopsRow{Capacity: c}
		for _, mode := range fig9HopModes {
			perm := perms[i]
			i++
			switch mode {
			case stitch.NoHop:
				row.NoHop = perm
			case stitch.RandomHop:
				row.RandomHop = perm
			case stitch.AnnealedRandomHop:
				row.AnnealedRandom = perm
			case stitch.AnnealedMidpointHop:
				row.AnnealedMidpoint = perm
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
