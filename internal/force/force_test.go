package force

import (
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
)

func buildFactory(t *testing.T, k, l int) (*bravyi.Factory, *graph.Graph, *layout.Placement) {
	t.Helper()
	f, err := bravyi.Build(bravyi.Params{K: k, Levels: l, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	return f, g, layout.Linear(f)
}

func TestAnnealKeepsPlacementValid(t *testing.T) {
	f, g, init := buildFactory(t, 4, 1)
	p := Anneal(g, f.Circuit, init, Options{Seed: 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N() != g.N {
		t.Fatalf("lost qubits: %d != %d", p.N(), g.N)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	f, g, init := buildFactory(t, 2, 1)
	p1 := Anneal(g, f.Circuit, init, Options{Seed: 42})
	p2 := Anneal(g, f.Circuit, init, Options{Seed: 42})
	for q := range p1.Pos {
		if p1.Pos[q] != p2.Pos[q] {
			t.Fatal("same seed must reproduce the same mapping")
		}
	}
}

func TestAnnealDoesNotMutateInput(t *testing.T) {
	f, g, init := buildFactory(t, 2, 1)
	before := append([]layout.Point(nil), init.Pos...)
	Anneal(g, f.Circuit, init, Options{Seed: 3})
	for q := range before {
		if init.Pos[q] != before[q] {
			t.Fatal("Anneal must not mutate the initial placement")
		}
	}
}

func TestAnnealImprovesRandomStart(t *testing.T) {
	// From a random start the annealer must shorten edges substantially.
	f, g, _ := buildFactory(t, 8, 1)
	rng := layout.Random(g.N, randSource(7))
	before := layout.TotalManhattan(g, rng)
	p := Anneal(g, f.Circuit, rng, Options{Seed: 7})
	after := layout.TotalManhattan(g, p)
	if after >= before {
		t.Errorf("edge length did not improve: %d -> %d", before, after)
	}
}

func TestAnnealCompetitiveWithLinearOnSimulator(t *testing.T) {
	f, g, lin := buildFactory(t, 8, 1)
	fd := Anneal(g, f.Circuit, lin, Options{Seed: 11})
	rl, err := mesh.Simulate(f.Circuit, lin, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := mesh.Simulate(f.Circuit, fd, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper finds FD slightly better than or comparable to linear on
	// single-level factories; allow a modest tolerance.
	if float64(rf.Latency) > 1.35*float64(rl.Latency) {
		t.Errorf("FD latency %d too far above linear %d", rf.Latency, rl.Latency)
	}
}

func TestAnnealAblationFlagsRun(t *testing.T) {
	f, g, init := buildFactory(t, 2, 1)
	p := Anneal(g, f.Circuit, init, Options{Seed: 5, DisableDipole: true, DisableCommunity: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealTwoLevelValid(t *testing.T) {
	f, g, init := buildFactory(t, 2, 2)
	p := Anneal(g, f.Circuit, init, Options{Seed: 9, Iterations: 10})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func randSource(seed int64) *randWrap { return newRandWrap(seed) }
