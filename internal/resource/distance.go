package resource

import (
	"math"

	"magicstate/internal/bravyi"
)

// ErrorModel captures the physical assumptions of §II.B: a logical qubit
// of distance d fails with probability PL ~ d * (100 * p / th)^((d+1)/2)
// where p is the physical error rate. Injected raw states carry error
// InjectError.
type ErrorModel struct {
	PhysError   float64 // underlying physical gate error rate
	InjectError float64 // error of freshly injected raw magic states
	Threshold   float64 // surface code threshold (~1e-2)
}

// DefaultError returns the error model used throughout the evaluation:
// p = 1e-3 (a factor 10 below threshold), injected state error 5e-3.
func DefaultError() ErrorModel {
	return ErrorModel{PhysError: 1e-3, InjectError: 5e-3, Threshold: 1e-2}
}

// LogicalError returns PL(d), the per-round failure probability of a
// distance-d logical qubit (§II.B).
func (em ErrorModel) LogicalError(d int) float64 {
	if d < 1 {
		return 1
	}
	base := em.PhysError / em.Threshold
	return float64(d) * math.Pow(base, float64(d+1)/2)
}

// MinDistanceFor returns the smallest odd code distance whose logical
// error is at or below target. Distances are odd by surface code
// convention. The result is capped at 99.
func (em ErrorModel) MinDistanceFor(target float64) int {
	for d := 3; d < 100; d += 2 {
		if em.LogicalError(d) <= target {
			return d
		}
	}
	return 99
}

// RoundErrors returns the magic-state error rate entering each round of an
// L-level factory (index 0 = error entering round 1 = InjectError) plus
// the final output error at index L. Each round squares the error up to
// the (1+3k) prefactor (§II.F).
func (em ErrorModel) RoundErrors(p bravyi.Params) []float64 {
	errs := make([]float64, p.Levels+1)
	errs[0] = em.InjectError
	for r := 1; r <= p.Levels; r++ {
		errs[r] = p.OutputError(errs[r-1])
	}
	return errs
}

// BalancedDistances implements the balanced-investment rule of [20]
// (§II.G): round r's logical qubits use the smallest distance d_r whose
// logical error does not dominate the state error flowing through that
// round, so early rounds use cheap low-distance tiles and later rounds
// scale up. The returned slice has one distance per round (index 0 =
// round 1).
func (em ErrorModel) BalancedDistances(p bravyi.Params) []int {
	errs := em.RoundErrors(p)
	ds := make([]int, p.Levels)
	for r := 1; r <= p.Levels; r++ {
		// The state error produced by round r sets the fidelity the
		// hardware must preserve: a safety factor of 10 keeps the code's
		// contribution subdominant.
		target := errs[r] / 10
		ds[r-1] = em.MinDistanceFor(target)
	}
	return ds
}

// PhysicalQubitsPerRound returns, for each round r, the physical qubit
// count q_r = N_r * (5k+13) * d_r^2 where N_r is the module count of the
// round (§II.G's q_r = m^(r-1) g^(l-r) (5k+13) d_r^2 with the module count
// expanded).
func (em ErrorModel) PhysicalQubitsPerRound(p bravyi.Params) []int {
	ds := em.BalancedDistances(p)
	qs := make([]int, p.Levels)
	for r := 1; r <= p.Levels; r++ {
		qs[r-1] = p.ModulesInRound(r) * p.QubitsPerModule() * ds[r-1] * ds[r-1]
	}
	return qs
}
