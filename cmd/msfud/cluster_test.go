package main

// In-process cluster tests: each "node" is a full server (batcher,
// admission, fabric) behind an httptest listener, cross-wired by URL.
// The chaos cases drive the same -fault-peer plans the soak harness
// uses, so what is asserted here deterministically is what the smoke
// job probes statistically: a cluster with a killed, stalled or
// corrupting peer answers every request 200 with bytes identical to a
// single-node serial run, and every orphaned point is accounted for by
// a fallback-compute counter.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"magicstate"
	"magicstate/internal/fabric"
	"magicstate/internal/httpclient"
	"magicstate/internal/store"
)

// clusterNode is one in-process cluster member and its internals.
type clusterNode struct {
	name   string
	ts     *httptest.Server
	srv    *server
	b      *magicstate.Batcher
	fab    *fabric.Fabric
	killed bool
}

// kill simulates SIGKILL: connections die and the port stops answering,
// with no drain handshake.
func (n *clusterNode) kill() {
	n.killed = true
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// clusterOpt shapes a test cluster. The zero value is a plain cluster:
// no replication, no background workers, default peer timeout.
type clusterOpt struct {
	replicate bool
	run       bool              // start each fabric's replication worker and prober
	timeout   time.Duration     // peer-call timeout (0 = fabric default)
	faults    map[string]string // node id -> -fault-peer plan for that node
}

// newTestCluster boots one server per name, each with its own store and
// fabric, then cross-wires the peer URLs. Breakers are tuned sharp
// (threshold 2, one-minute cooldown, single-attempt client) so failure
// handling is deterministic within a test.
func newTestCluster(t *testing.T, names []string, opt clusterOpt) map[string]*clusterNode {
	t.Helper()
	nodes := make(map[string]*clusterNode, len(names))
	for _, name := range names {
		fab, err := fabric.New(fabric.Options{
			Self:             name,
			Nodes:            names,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Minute,
			Timeout:          opt.timeout,
			Replicate:        opt.replicate,
			Client: &httpclient.Client{
				MaxAttempts: 1,
				Sleep:       func(context.Context, time.Duration) error { return nil },
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := magicstate.NewBatcher(magicstate.BatcherOptions{
			Parallelism: 2,
			Checkpoint:  t.TempDir(),
			RemoteFetch: func(ctx context.Context, key [32]byte) ([]byte, bool) {
				return fab.Fetch(ctx, key)
			},
			RemoteEval: func(ctx context.Context, key [32]byte, cfgJSON []byte) ([]byte, bool) {
				return fab.Evaluate(ctx, key, cfgJSON)
			},
			OnStore: func(key [32]byte, payload []byte) {
				fab.NotifyPut(key, payload)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		cfg := serverConfig{MaxParallel: 2, MaxPoints: 256, MaxInflight: 4, MaxQueue: 16, Fabric: fab}
		if spec := opt.faults[name]; spec != "" {
			plan, err := fabric.ParsePeerFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.PeerFaults = plan
		}
		srv := newServer(b, cfg)
		n := &clusterNode{name: name, srv: srv, b: b, fab: fab}
		n.ts = httptest.NewServer(srv.handler())
		t.Cleanup(func() {
			if !n.killed {
				n.ts.Close()
			}
		})
		nodes[name] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.fab.SetURL(m.name, m.ts.URL)
			}
		}
	}
	if opt.run {
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		for _, n := range nodes {
			go n.fab.Run(ctx)
		}
	}
	return nodes
}

// clusterPointKey derives the store key the cluster routes on for the
// fixed (capacity 4, level 1) test point family, varying only the seed.
func clusterPointKey(t *testing.T, seed int64) store.Key {
	t.Helper()
	hexKey, err := magicstate.PointKey(
		magicstate.FactorySpec{Capacity: 4, Levels: 1}, magicstate.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.ParseKey(hexKey)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// planSeeds picks one distinct seed per requested owner, in order, by
// scanning the seed space against the ring. Ownership is a pure hash,
// so the plan is deterministic across runs.
func planSeeds(t *testing.T, ring *fabric.Ring, owners []string) []int64 {
	t.Helper()
	seeds := make([]int64, len(owners))
	var cursor int64
	for i, owner := range owners {
		for {
			cursor++
			if cursor > 100000 {
				t.Fatalf("no seed owned by %s in the first %d", owner, cursor)
			}
			if ring.Owner(clusterPointKey(t, cursor)) == owner {
				seeds[i] = cursor
				break
			}
		}
	}
	return seeds
}

// optimizeBody POSTs one point and returns the status and the exact
// response bytes, which the cluster tests compare byte-for-byte against
// a single-node serial baseline.
func optimizeBody(t *testing.T, baseURL string, req optimizeRequest) (int, string) {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/optimize", req)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// peerSnap extracts one peer's counters from a fabric snapshot.
func peerSnap(t *testing.T, f *fabric.Fabric, node string) fabric.PeerSnapshot {
	t.Helper()
	for _, p := range f.Stats().Peers {
		if p.Node == node {
			return p
		}
	}
	t.Fatalf("no peer %s in snapshot", node)
	return fabric.PeerSnapshot{}
}

// serialBaseline computes every seed's point on a fabric-less server
// and returns the response bodies the cluster must reproduce exactly.
func serialBaseline(t *testing.T, seeds []int64) []string {
	t.Helper()
	ts, _, _ := newRobustServer(t, serverConfig{MaxInflight: 4, MaxQueue: 16})
	out := make([]string, len(seeds))
	for i, seed := range seeds {
		code, body := optimizeBody(t, ts.URL, optimizeRequest{Capacity: 4, Levels: 1, Seed: seed})
		if code != http.StatusOK {
			t.Fatalf("baseline point %d: status %d: %s", i, code, body)
		}
		out[i] = body
	}
	return out
}

// TestClusterPeerReadThrough: a record computed at its owner is served
// to the rest of the cluster by fetch, not recomputation.
func TestClusterPeerReadThrough(t *testing.T) {
	names := []string{"pa", "pb"}
	ring, err := fabric.NewRing(names)
	if err != nil {
		t.Fatal(err)
	}
	seeds := planSeeds(t, ring, []string{"pb"})
	baseline := serialBaseline(t, seeds)
	req := optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[0]}

	nodes := newTestCluster(t, names, clusterOpt{})
	if code, body := optimizeBody(t, nodes["pb"].ts.URL, req); code != http.StatusOK || body != baseline[0] {
		t.Fatalf("owner compute: status %d body %s, want 200 %s", code, body, baseline[0])
	}
	if code, body := optimizeBody(t, nodes["pa"].ts.URL, req); code != http.StatusOK || body != baseline[0] {
		t.Fatalf("peer read-through: status %d body %s, want 200 %s", code, body, baseline[0])
	}
	ps := peerSnap(t, nodes["pa"].fab, "pb")
	if ps.FetchHits != 1 || ps.Forwards != 0 {
		t.Fatalf("peer pb counters = %+v, want exactly one fetch hit and no forwards", ps)
	}
	if st := nodes["pa"].b.Stats(); st.PeerFetchHits != 1 {
		t.Fatalf("PeerFetchHits = %d, want 1", st.PeerFetchHits)
	}
}

// TestClusterFailoverKill is the deterministic failover acceptance
// test: a 3-node cluster sweeps a seed grid with one node SIGKILLed
// halfway through. Every response must be 200 and byte-identical to the
// single-node serial baseline, and the survivors' fallback-compute
// counters must account for exactly the points orphaned by the kill.
func TestClusterFailoverKill(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	ring, err := fabric.NewRing(names)
	if err != nil {
		t.Fatal(err)
	}
	// Four points per owner, interleaved, so both halves of the sweep
	// touch every owner.
	var owners []string
	for i := 0; i < 4; i++ {
		owners = append(owners, "n1", "n2", "n3")
	}
	seeds := planSeeds(t, ring, owners)
	baseline := serialBaseline(t, seeds)

	nodes := newTestCluster(t, names, clusterOpt{})
	order := []string{"n1", "n2", "n3"}

	// First half, all nodes alive: request each point at a NON-owner, so
	// the fabric's fetch-miss + forward path carries real traffic.
	for i := 0; i < 6; i++ {
		n := nodes[order[(i+1)%3]]
		code, body := optimizeBody(t, n.ts.URL, optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[i]})
		if code != http.StatusOK {
			t.Fatalf("point %d via %s: status %d: %s", i, n.name, code, body)
		}
		if body != baseline[i] {
			t.Fatalf("point %d via %s differs from serial baseline:\n got %s\nwant %s", i, n.name, body, baseline[i])
		}
	}

	nodes["n3"].kill()

	// Second half on the survivors. Points owned by the dead node are
	// orphans: their owner is unreachable, so whichever survivor gets
	// the request must fall back to computing locally.
	survivors := []string{"n1", "n2"}
	orphans := 0
	for i := 6; i < len(seeds); i++ {
		if owners[i] == "n3" {
			orphans++
		}
		n := nodes[survivors[i%2]]
		code, body := optimizeBody(t, n.ts.URL, optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[i]})
		if code != http.StatusOK {
			t.Fatalf("point %d via %s after kill: status %d (a non-injected non-200): %s", i, n.name, code, body)
		}
		if body != baseline[i] {
			t.Fatalf("point %d via %s after kill differs from serial baseline:\n got %s\nwant %s", i, n.name, body, baseline[i])
		}
	}
	if orphans == 0 {
		t.Fatal("test plan broken: no orphaned points after the kill")
	}
	total := nodes["n1"].fab.Stats().FallbackComputes + nodes["n2"].fab.Stats().FallbackComputes
	if total != int64(orphans) {
		t.Fatalf("fallback computes across survivors = %d, want %d (one per orphaned point)", total, orphans)
	}
}

// TestClusterCorruptPeerNeverAdmitted: a peer serving bit-flipped
// payloads (fault plan corrupt=1) is caught by byte verification on
// both the fetch and the forwarded-eval path; callers fall back to
// local compute and no corrupt record is ever admitted to any store.
func TestClusterCorruptPeerNeverAdmitted(t *testing.T) {
	names := []string{"na", "nb", "nc"}
	ring, err := fabric.NewRing(names)
	if err != nil {
		t.Fatal(err)
	}
	seeds := planSeeds(t, ring, []string{"nb"})
	baseline := serialBaseline(t, seeds)
	req := optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[0]}
	k := clusterPointKey(t, seeds[0])

	nodes := newTestCluster(t, names, clusterOpt{faults: map[string]string{"nb": "corrupt=1"}})

	// na asks first: nb has no record (clean 404 miss), the forwarded
	// eval comes back corrupted and is rejected, na computes locally.
	if code, body := optimizeBody(t, nodes["na"].ts.URL, req); code != http.StatusOK || body != baseline[0] {
		t.Fatalf("na: status %d body %s, want 200 %s", code, body, baseline[0])
	}
	psA := peerSnap(t, nodes["na"].fab, "nb")
	if psA.FetchMisses != 1 || psA.ForwardFailures != 1 {
		t.Fatalf("na's view of nb = %+v, want one clean miss and one rejected forward", psA)
	}
	if fb := nodes["na"].fab.Stats().FallbackComputes; fb != 1 {
		t.Fatalf("na fallback computes = %d, want 1", fb)
	}

	// nb computed and stored the point while serving the corrupted eval,
	// so nc's read-through fetch now gets a real record — corrupted on
	// the wire. It must be rejected, and nc must still answer correctly.
	if code, body := optimizeBody(t, nodes["nc"].ts.URL, req); code != http.StatusOK || body != baseline[0] {
		t.Fatalf("nc: status %d body %s, want 200 %s", code, body, baseline[0])
	}
	psC := peerSnap(t, nodes["nc"].fab, "nb")
	if psC.FetchRejected != 1 || psC.ForwardFailures != 1 {
		t.Fatalf("nc's view of nb = %+v, want one rejected fetch and one rejected forward", psC)
	}

	// Every store holds the same canonical bytes — the corruption never
	// crossed into anyone's log.
	want, ok := nodes["nb"].b.RecordGet(k)
	if !ok {
		t.Fatal("owner nb did not store the record it computed")
	}
	for _, name := range []string{"na", "nc"} {
		got, ok := nodes[name].b.RecordGet(k)
		if !ok {
			t.Fatalf("%s did not persist its fallback compute", name)
		}
		if string(got) != string(want) {
			t.Fatalf("%s stored %s, owner stored %s", name, got, want)
		}
	}
}

// TestClusterStallFallsBack: a peer stalling past the fabric timeout is
// indistinguishable from a dead one — the caller times out, falls back,
// and still answers correctly.
func TestClusterStallFallsBack(t *testing.T) {
	names := []string{"sa", "sb"}
	ring, err := fabric.NewRing(names)
	if err != nil {
		t.Fatal(err)
	}
	seeds := planSeeds(t, ring, []string{"sb"})
	baseline := serialBaseline(t, seeds)
	req := optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[0]}

	nodes := newTestCluster(t, names, clusterOpt{
		timeout: 50 * time.Millisecond,
		faults:  map[string]string{"sb": "stall=1:300ms"},
	})
	if code, body := optimizeBody(t, nodes["sa"].ts.URL, req); code != http.StatusOK || body != baseline[0] {
		t.Fatalf("sa: status %d body %s, want 200 %s", code, body, baseline[0])
	}
	ps := peerSnap(t, nodes["sa"].fab, "sb")
	if ps.FetchFailures != 1 || ps.ForwardFailures != 1 {
		t.Fatalf("sa's view of sb = %+v, want one timed-out fetch and one timed-out forward", ps)
	}
	if fb := nodes["sa"].fab.Stats().FallbackComputes; fb != 1 {
		t.Fatalf("fallback computes = %d, want 1", fb)
	}
}

// TestClusterReplicationToSuccessor: with -replicate on, a record
// freshly computed at its owner lands, byte-identical, on the key's
// ring successor without that node ever being asked.
func TestClusterReplicationToSuccessor(t *testing.T) {
	names := []string{"ra", "rb", "rc"}
	ring, err := fabric.NewRing(names)
	if err != nil {
		t.Fatal(err)
	}
	seeds := planSeeds(t, ring, []string{"ra"})
	req := optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[0]}
	k := clusterPointKey(t, seeds[0])
	succ := ring.Successor(k)
	if succ == "" || succ == "ra" {
		t.Fatalf("successor of a ra-owned key = %q", succ)
	}

	nodes := newTestCluster(t, names, clusterOpt{replicate: true, run: true})
	if code, _ := optimizeBody(t, nodes["ra"].ts.URL, req); code != http.StatusOK {
		t.Fatalf("owner compute: status %d", code)
	}
	want, ok := nodes["ra"].b.RecordGet(k)
	if !ok {
		t.Fatal("owner did not store its own record")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := nodes[succ].b.RecordGet(k); ok {
			if string(got) != string(want) {
				t.Fatalf("replica on %s = %s, origin = %s", succ, got, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("record never replicated to successor %s", succ)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The replica can land on the receiver an instant before the sender
	// finishes reading the response and counts the send, so poll. Stage
	// records the owner also happens to own hash independently, so their
	// replicas may ride along to the same successor — assert at least the
	// final record's send, not an exact count.
	for peerSnap(t, nodes["ra"].fab, succ).ReplicationSent < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("replication_sent to %s = %d, want >= 1",
				succ, peerSnap(t, nodes["ra"].fab, succ).ReplicationSent)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterViewAndFabricMetricsAgree: GET /v1/cluster aggregates all
// members, and the fabric counters in /v1/stats match the per-peer
// series /metrics exports — the cluster extension of the stats/metrics
// agreement contract.
func TestClusterViewAndFabricMetricsAgree(t *testing.T) {
	names := []string{"va", "vb", "vc"}
	ring, err := fabric.NewRing(names)
	if err != nil {
		t.Fatal(err)
	}
	seeds := planSeeds(t, ring, []string{"vb"})
	req := optimizeRequest{Capacity: 4, Levels: 1, Seed: seeds[0]}

	nodes := newTestCluster(t, names, clusterOpt{})
	if code, _ := optimizeBody(t, nodes["va"].ts.URL, req); code != http.StatusOK {
		t.Fatalf("forwarded compute: status %d", code)
	}

	resp, err := http.Get(nodes["va"].ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	view := decode[struct {
		Self  string `json:"self"`
		Nodes []struct {
			Node  string         `json:"node"`
			Error string         `json:"error"`
			Stats map[string]any `json:"stats"`
		} `json:"nodes"`
		Fabric fabric.Snapshot `json:"fabric"`
	}](t, resp)
	if view.Self != "va" || len(view.Nodes) != 3 {
		t.Fatalf("cluster view self=%q with %d nodes, want va with 3", view.Self, len(view.Nodes))
	}
	for _, n := range view.Nodes {
		if n.Error != "" || n.Stats == nil {
			t.Fatalf("node %s in cluster view: error=%q stats=%v, want live stats", n.Node, n.Error, n.Stats)
		}
	}

	r, err := http.Get(nodes["va"].ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[struct {
		Fabric fabric.Snapshot `json:"fabric"`
	}](t, r)
	if got := peerForwards(stats.Fabric, "vb"); got < 1 {
		t.Fatalf("stats report %d forwards to vb, want >= 1", got)
	}

	forwardSeries := scrapeMetricSeries(t, nodes["va"].ts.URL, "msfud_fabric_forward_total")
	fetchHitSeries := scrapeMetricSeries(t, nodes["va"].ts.URL, "msfud_fabric_fetch_hits_total")
	breakerSeries := scrapeMetricSeries(t, nodes["va"].ts.URL, "msfud_fabric_breaker_state")
	for _, p := range stats.Fabric.Peers {
		label := fmt.Sprintf("{peer=%q}", p.Node)
		if got := forwardSeries[label]; got != float64(p.Forwards) {
			t.Errorf("msfud_fabric_forward_total%s = %g, /v1/stats says %d", label, got, p.Forwards)
		}
		if got := fetchHitSeries[label]; got != float64(p.FetchHits) {
			t.Errorf("msfud_fabric_fetch_hits_total%s = %g, /v1/stats says %d", label, got, p.FetchHits)
		}
		if got, ok := breakerSeries[label]; !ok || got != 0 {
			t.Errorf("msfud_fabric_breaker_state%s = %g (present %v), want 0 (closed)", label, got, ok)
		}
	}
	if got := scrapeMetric(t, nodes["va"].ts.URL, "msfud_fabric_fallback_computes_total"); got != float64(stats.Fabric.FallbackComputes) {
		t.Errorf("msfud_fabric_fallback_computes_total = %g, /v1/stats says %d", got, stats.Fabric.FallbackComputes)
	}
}

// peerForwards reads one peer's forward count out of a snapshot.
func peerForwards(s fabric.Snapshot, node string) int64 {
	for _, p := range s.Peers {
		if p.Node == node {
			return p.Forwards
		}
	}
	return -1
}
