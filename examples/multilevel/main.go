// Multilevel: build a two-level, capacity-16 block-code factory and show
// what each piece of the hierarchical stitching pipeline (§VII of the
// paper) buys: per-module block embedding, qubit reuse, Hungarian port
// reassignment, and annealed intermediate-hop permutation routing.
package main

import (
	"fmt"
	"log"

	"magicstate/internal/bravyi"
	"magicstate/internal/mesh"
	"magicstate/internal/stitch"
)

func run(name string, opt stitch.Options) {
	r, err := stitch.Build(bravyi.Params{K: 4, Levels: 2, Barriers: true}, opt)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := mesh.Simulate(r.Factory.Circuit, r.Placement, mesh.Config{})
	if err != nil {
		log.Fatal(err)
	}
	perm, _ := stitch.PermutationLatency(r.Factory, sim.Start, sim.End, 2)
	fmt.Printf("%-34s latency %5d  area %4d  volume %10.4g  permutation %4d\n",
		name, sim.Latency, sim.Area, float64(sim.Latency)*float64(sim.Area), perm)
}

func main() {
	fmt.Println("two-level capacity-16 factory, hierarchical stitching variants:")
	run("no reuse, direct permutation", stitch.Options{Seed: 1, Hops: stitch.NoHop})
	run("reuse, direct permutation", stitch.Options{Seed: 1, Reuse: true, Hops: stitch.NoHop})
	run("reuse, no port reassignment", stitch.Options{Seed: 1, Reuse: true, Hops: stitch.NoHop, DisablePortReassign: true})
	run("reuse, random (Valiant) hops", stitch.Options{Seed: 1, Reuse: true, Hops: stitch.RandomHop})
	run("reuse, annealed midpoint hops", stitch.Options{Seed: 1, Reuse: true, Hops: stitch.AnnealedMidpointHop})
}
