// Package scaffold compiles the subset of the Scaffold quantum
// programming language [30] that the paper's Fig. 5 listing uses into the
// circuit IR: #define constants, module definitions with qbit* array
// parameters, qbit array declarations, constant-bound for loops, integer
// arithmetic in indices, gate statements (H, X, Z, S, T, CNOT, CXX,
// injectT, injectTdag, MeasX, MeasZ, PrepZ, barrier) and module calls.
// The paper compiles each factory configuration from Scaffold source
// (§VIII.A); this front-end lets the repository do the same and
// cross-check the programmatic generator against the published listing.
package scaffold

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single/double character punctuation: ( ) { } [ ] ; , * = < > + - / ++ etc.
	tokHash  // #define
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
}

// lex tokenizes source, stripping // and /* */ comments.
func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("scaffold:%d: unterminated block comment", l.line)
			}
			l.pos += 2
		case c == '#':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && unicode.IsLetter(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokHash, string(l.src[start:l.pos]))
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tokIdent, string(l.src[start:l.pos]))
		case unicode.IsDigit(c):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokNumber, string(l.src[start:l.pos]))
		case strings.ContainsRune("(){}[];,*=<>+-/!", c):
			// Two-character operators first.
			if two := string(l.src[l.pos:min(l.pos+2, len(l.src))]); two == "++" || two == "--" || two == "<=" || two == ">=" || two == "==" || two == "!=" {
				l.emit(tokPunct, two)
				l.pos += 2
				break
			}
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("scaffold:%d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) peek(ahead int) rune {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
