package main

// The msfu store subcommand family: offline maintenance of durable
// result store directories (the -checkpoint / -store format shared by
// msfu, msfud and paperbench).
//
//	msfu store verify DIR            scrub a store, report its health
//	msfu store verify -repair DIR    also truncate a torn tail
//
// verify exits 0 on a clean store, 1 when corruption was found and not
// repaired, and 0 after a successful -repair (the store is clean now;
// what was dropped is reported). Soft findings — records that do not
// decode, duplicate keys — never block reads and never exit non-zero,
// but are always printed.

import (
	"flag"
	"fmt"
	"os"

	"magicstate/internal/store"
)

// storeCmd dispatches "msfu store ..." and returns the process exit
// code.
func storeCmd(args []string) int {
	if len(args) == 0 || args[0] != "verify" {
		fmt.Fprintln(os.Stderr, "usage: msfu store verify [-repair] DIR")
		return 2
	}
	fs := flag.NewFlagSet("msfu store verify", flag.ExitOnError)
	repair := fs.Bool("repair", false, "truncate the store back to its last valid record")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: msfu store verify [-repair] DIR")
		fs.PrintDefaults()
	}
	fs.Parse(args[1:])
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	dir := fs.Arg(0)

	rep, err := store.Scrub(dir, *repair)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msfu store verify: %v\n", err)
		return 1
	}

	fmt.Printf("%s: %d index entries (%d bytes index, %d bytes log)\n",
		dir, rep.Entries, rep.IndexBytes, rep.LogBytes)
	if rep.StageRecords > 0 {
		fmt.Printf("  records: %d final, %d stage artifacts\n",
			rep.Valid-rep.StageRecords, rep.StageRecords)
	}
	if rep.Truncated {
		fmt.Printf("  torn tail: %s\n", rep.Reason)
		fmt.Printf("  valid prefix: %d of %d entries (%d bytes index, %d bytes log)\n",
			rep.Valid, rep.Entries, rep.ValidIndexBytes, rep.ValidLogBytes)
		if rep.Repaired {
			fmt.Printf("  repaired: truncated %d entries past the valid prefix\n", rep.Entries-rep.Valid)
		} else {
			fmt.Println("  not repaired (run with -repair to truncate, or let the next open do it)")
		}
	} else {
		fmt.Printf("  chain: all %d entries verify (entry CRC, contiguity, payload CRC)\n", rep.Valid)
	}
	for _, bad := range rep.BadRecords {
		fmt.Printf("  soft finding: %s\n", bad)
	}
	if rep.Clean() || rep.Repaired {
		fmt.Println("  store is clean")
		return 0
	}
	return 1
}
