// Package kmeans implements k-means clustering over 2-D points. The
// paper's force-directed community optimizations (§VI.B.1) use k-means to
// locate the centroids of the spatial clusters a community has broken into,
// and the hierarchical stitching hop optimizer uses it to seed intermediate
// destinations.
package kmeans

import (
	"math"
	"math/rand"
)

// Point is a position in the plane. Layout coordinates are integers but
// centroids are fractional, so the clustering space is float64.
type Point struct {
	X, Y float64
}

func sqDist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Result holds a clustering: Centroids[i] is the centre of cluster i and
// Assign[j] names the cluster of input point j.
type Result struct {
	Centroids []Point
	Assign    []int
}

// KMeans clusters pts into k clusters using k-means++ seeding followed by
// Lloyd iterations, stopping after maxIter rounds or when assignments stop
// changing. k is clamped to [1, len(pts)]. A nil rng or empty input yields
// an empty Result.
func KMeans(pts []Point, k, maxIter int, rng *rand.Rand) Result {
	if len(pts) == 0 || rng == nil {
		return Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > len(pts) {
		k = len(pts)
	}
	centroids := seedPlusPlus(pts, k, rng)
	assign := make([]int, len(pts))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for j, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if d := sqDist(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[j] != best {
				assign[j] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		sums := make([]Point, k)
		counts := make([]int, k)
		for j, p := range pts {
			c := assign[j]
			sums[c].X += p.X
			sums[c].Y += p.Y
			counts[c]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point so k
				// clusters survive degenerate configurations.
				centroids[c] = pts[rng.Intn(len(pts))]
				continue
			}
			centroids[c] = Point{sums[c].X / float64(counts[c]), sums[c].Y / float64(counts[c])}
		}
	}
	return Result{Centroids: centroids, Assign: assign}
}

// seedPlusPlus chooses k starting centroids with the k-means++ rule:
// the first uniformly, each subsequent one with probability proportional
// to its squared distance from the nearest chosen centroid.
func seedPlusPlus(pts []Point, k int, rng *rand.Rand) []Point {
	centroids := make([]Point, 0, k)
	centroids = append(centroids, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centroids) < k {
		var total float64
		for j, p := range pts {
			d2[j] = sqDist(p, centroids[0])
			for _, c := range centroids[1:] {
				if d := sqDist(p, c); d < d2[j] {
					d2[j] = d
				}
			}
			total += d2[j]
		}
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			centroids = append(centroids, pts[rng.Intn(len(pts))])
			continue
		}
		r := rng.Float64() * total
		idx := len(pts) - 1
		for j := range pts {
			r -= d2[j]
			if r <= 0 {
				idx = j
				break
			}
		}
		centroids = append(centroids, pts[idx])
	}
	return centroids
}

// Inertia returns the total within-cluster squared distance of a result
// over the original points; lower is tighter.
func Inertia(pts []Point, res Result) float64 {
	var s float64
	for j, p := range pts {
		if j < len(res.Assign) && res.Assign[j] >= 0 && res.Assign[j] < len(res.Centroids) {
			s += sqDist(p, res.Centroids[res.Assign[j]])
		}
	}
	return s
}
