package main

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"magicstate"
	"magicstate/internal/fabric"
)

// metrics is the service's single observability registry: every counter
// behind GET /metrics (Prometheus text exposition) and every counter in
// GET /v1/stats reads from here, so the two surfaces cannot drift. The
// registry owns request/latency accounting and borrows live gauges from
// the subsystems that own them (admission budget, rate limiter,
// singleflight table, cache tier) at scrape time.
type metrics struct {
	started time.Time

	mu       sync.Mutex
	requests map[reqSeries]*int64

	latency *histogram // accepted-request service time, seconds

	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64

	// ewmaMicros tracks a smoothed compute-request service time; the
	// 429 Retry-After estimate derives from it.
	ewmaMicros atomic.Int64

	// Live sources, wired once at construction.
	batcher      *magicstate.Batcher
	adm          *admission
	rl           *rateLimiter
	flights      *flightTable
	jobsInFlight func() int
	fabric       *fabric.Fabric // nil on a single-node service
}

// reqSeries is one requests_total series: route pattern x status code.
type reqSeries struct {
	path string
	code int
}

func newMetrics(b *magicstate.Batcher, adm *admission, rl *rateLimiter, fl *flightTable, jobsInFlight func() int) *metrics {
	return &metrics{
		started:      time.Now(),
		requests:     make(map[reqSeries]*int64),
		latency:      newHistogram(),
		batcher:      b,
		adm:          adm,
		rl:           rl,
		flights:      fl,
		jobsInFlight: jobsInFlight,
	}
}

// observe records one finished request: its series count always, its
// latency only when the request was an accepted and served (2xx)
// compute request — the latency SLO is over accepted compute, and
// folding in rejections' or metadata reads' microsecond turnarounds
// would flatter the percentiles.
func (m *metrics) observe(path string, code int, d time.Duration) {
	m.mu.Lock()
	c, ok := m.requests[reqSeries{path, code}]
	if !ok {
		c = new(int64)
		m.requests[reqSeries{path, code}] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
	compute := path == "/v1/optimize" || path == "/v1/batch"
	if compute && code >= 200 && code < 300 {
		m.latency.observe(d.Seconds())
		// EWMA with alpha 1/8, in integer microseconds.
		for {
			old := m.ewmaMicros.Load()
			nw := old + (d.Microseconds()-old)/8
			if old == 0 {
				nw = d.Microseconds()
			}
			if m.ewmaMicros.CompareAndSwap(old, nw) {
				break
			}
		}
	}
}

// retryAfterSeconds estimates how long a rejected caller should wait
// for the queue to turn over: the smoothed service time times the queue
// they would sit behind, clamped to [1s, 30s].
func (m *metrics) retryAfterSeconds() int {
	avg := time.Duration(m.ewmaMicros.Load()) * time.Microsecond
	depth := m.adm.queued.Load() + m.adm.inflight.Load()
	est := int(avg.Seconds() * float64(depth) / float64(m.adm.maxInflight))
	if est < 1 {
		return 1
	}
	if est > 30 {
		return 30
	}
	return est
}

// requestCounts snapshots requests_total keyed by "code" strings summed
// over paths, the shape /v1/stats reports.
func (m *metrics) requestCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64)
	for s, c := range m.requests {
		out[fmt.Sprintf("%d", s.code)] += atomic.LoadInt64(c)
	}
	return out
}

// handleMetrics serves the Prometheus text exposition format, hand
// rendered — the repo takes no dependencies, and the format is lines.
func (m *metrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP msfud_uptime_seconds Seconds since the service started.\n# TYPE msfud_uptime_seconds gauge\nmsfud_uptime_seconds %d\n", int64(time.Since(m.started).Seconds()))

	// requests_total, in sorted series order for stable scrapes.
	fmt.Fprintf(w, "# HELP msfud_requests_total Requests finished, by route and status code (499 = client went away).\n# TYPE msfud_requests_total counter\n")
	m.mu.Lock()
	series := make([]reqSeries, 0, len(m.requests))
	for s := range m.requests {
		series = append(series, s)
	}
	m.mu.Unlock()
	sort.Slice(series, func(i, j int) bool {
		if series[i].path != series[j].path {
			return series[i].path < series[j].path
		}
		return series[i].code < series[j].code
	})
	for _, s := range series {
		m.mu.Lock()
		c := m.requests[s]
		m.mu.Unlock()
		fmt.Fprintf(w, "msfud_requests_total{path=%q,code=\"%d\"} %d\n", s.path, s.code, atomic.LoadInt64(c))
	}

	fmt.Fprintf(w, "# HELP msfud_queue_depth Requests waiting for an execution slot.\n# TYPE msfud_queue_depth gauge\nmsfud_queue_depth %d\n", m.adm.queued.Load())
	fmt.Fprintf(w, "# HELP msfud_inflight Requests holding an execution slot.\n# TYPE msfud_inflight gauge\nmsfud_inflight %d\n", m.adm.inflight.Load())
	fmt.Fprintf(w, "# HELP msfud_queue_rejected_total Requests rejected because the admission queue was full.\n# TYPE msfud_queue_rejected_total counter\nmsfud_queue_rejected_total %d\n", m.adm.rejected.Load())
	fmt.Fprintf(w, "# HELP msfud_rate_limited_total Requests rejected by the per-client token bucket.\n# TYPE msfud_rate_limited_total counter\nmsfud_rate_limited_total %d\n", m.rl.limited.Load())

	fmt.Fprintf(w, "# HELP msfud_singleflight_leader_total Computations started by the cross-request singleflight table.\n# TYPE msfud_singleflight_leader_total counter\nmsfud_singleflight_leader_total %d\n", m.flights.leaders.Load())
	fmt.Fprintf(w, "# HELP msfud_singleflight_shared_total Requests that joined an in-flight identical computation.\n# TYPE msfud_singleflight_shared_total counter\nmsfud_singleflight_shared_total %d\n", m.flights.shared.Load())
	fmt.Fprintf(w, "# HELP msfud_singleflight_inflight In-flight shared computations.\n# TYPE msfud_singleflight_inflight gauge\nmsfud_singleflight_inflight %d\n", m.flights.size())

	cs := m.batcher.Stats()
	fmt.Fprintf(w, "# HELP msfud_cache_memory_hits_total In-memory memo hits.\n# TYPE msfud_cache_memory_hits_total counter\nmsfud_cache_memory_hits_total %d\n", cs.MemoryHits)
	fmt.Fprintf(w, "# HELP msfud_cache_memory_misses_total In-memory memo misses.\n# TYPE msfud_cache_memory_misses_total counter\nmsfud_cache_memory_misses_total %d\n", cs.MemoryMisses)
	fmt.Fprintf(w, "# HELP msfud_cache_disk_hits_total Points served from the durable store.\n# TYPE msfud_cache_disk_hits_total counter\nmsfud_cache_disk_hits_total %d\n", cs.DiskHits)
	fmt.Fprintf(w, "# HELP msfud_cache_peer_fetch_hits_total Points served by fetching a peer's record (subset of disk hits).\n# TYPE msfud_cache_peer_fetch_hits_total counter\nmsfud_cache_peer_fetch_hits_total %d\n", cs.PeerFetchHits)
	fmt.Fprintf(w, "# HELP msfud_cache_remote_eval_hits_total Points computed by their owning peer on this node's behalf.\n# TYPE msfud_cache_remote_eval_hits_total counter\nmsfud_cache_remote_eval_hits_total %d\n", cs.RemoteEvalHits)
	fmt.Fprintf(w, "# HELP msfud_store_records Live final records in the durable store.\n# TYPE msfud_store_records gauge\nmsfud_store_records %d\n", cs.StoredRecords)
	fmt.Fprintf(w, "# HELP msfud_store_bytes Durable store log size in bytes.\n# TYPE msfud_store_bytes gauge\nmsfud_store_bytes %d\n", cs.StoredBytes)
	fmt.Fprintf(w, "# HELP msfud_store_stage_records Live stage artifacts in the durable store.\n# TYPE msfud_store_stage_records gauge\nmsfud_store_stage_records %d\n", cs.StageRecords)

	fmt.Fprintf(w, "# HELP msfud_cache_stage_hits_total Pipeline stage artifacts replayed from the durable store.\n# TYPE msfud_cache_stage_hits_total counter\n")
	fmt.Fprintf(w, "msfud_cache_stage_hits_total{stage=\"build\"} %d\n", cs.StageBuildHits)
	fmt.Fprintf(w, "msfud_cache_stage_hits_total{stage=\"place\"} %d\n", cs.StagePlaceHits)
	fmt.Fprintf(w, "msfud_cache_stage_hits_total{stage=\"sim\"} %d\n", cs.StageSimHits)
	fmt.Fprintf(w, "# HELP msfud_cache_stage_computes_total Pipeline stages actually executed.\n# TYPE msfud_cache_stage_computes_total counter\n")
	fmt.Fprintf(w, "msfud_cache_stage_computes_total{stage=\"build\"} %d\n", cs.StageBuildComputes)
	fmt.Fprintf(w, "msfud_cache_stage_computes_total{stage=\"place\"} %d\n", cs.StagePlaceComputes)
	fmt.Fprintf(w, "msfud_cache_stage_computes_total{stage=\"sim\"} %d\n", cs.StageSimComputes)

	m.writeFabric(w)

	fmt.Fprintf(w, "# HELP msfud_jobs_completed_total Batch jobs finished successfully.\n# TYPE msfud_jobs_completed_total counter\nmsfud_jobs_completed_total %d\n", m.jobsCompleted.Load())
	fmt.Fprintf(w, "# HELP msfud_jobs_failed_total Batch jobs that failed or were cancelled.\n# TYPE msfud_jobs_failed_total counter\nmsfud_jobs_failed_total %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "# HELP msfud_jobs_inflight Batch jobs currently running.\n# TYPE msfud_jobs_inflight gauge\nmsfud_jobs_inflight %d\n", m.jobsInFlight())

	m.latency.write(w, "msfud_request_seconds", "Service time of accepted requests, seconds.")
}

// writeFabric renders the per-peer fabric series. Peers come from the
// fabric's snapshot already sorted, so scrapes are stable; the whole
// block is absent on a single-node service rather than zero-valued.
func (m *metrics) writeFabric(w http.ResponseWriter) {
	if m.fabric == nil {
		return
	}
	snap := m.fabric.Stats()

	peerCounter := func(name, help string, value func(fabric.PeerSnapshot) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, p := range snap.Peers {
			fmt.Fprintf(w, "%s{peer=%q} %d\n", name, p.Node, value(p))
		}
	}
	peerCounter("msfud_fabric_fetch_hits_total", "Peer record fetches that returned a verified record.",
		func(p fabric.PeerSnapshot) int64 { return p.FetchHits })
	peerCounter("msfud_fabric_fetch_misses_total", "Peer record fetches answered 404 (clean miss).",
		func(p fabric.PeerSnapshot) int64 { return p.FetchMisses })
	peerCounter("msfud_fabric_fetch_failures_total", "Peer record fetches that failed (transport or HTTP error).",
		func(p fabric.PeerSnapshot) int64 { return p.FetchFailures })
	peerCounter("msfud_fabric_fetch_rejected_total", "Peer record fetches rejected by byte verification.",
		func(p fabric.PeerSnapshot) int64 { return p.FetchRejected })
	peerCounter("msfud_fabric_forward_total", "Point evaluations forwarded to their owning peer.",
		func(p fabric.PeerSnapshot) int64 { return p.Forwards })
	peerCounter("msfud_fabric_forward_failures_total", "Forwarded evaluations that failed and fell back to local compute.",
		func(p fabric.PeerSnapshot) int64 { return p.ForwardFailures })
	peerCounter("msfud_fabric_replication_sent_total", "Records successfully replicated to this peer.",
		func(p fabric.PeerSnapshot) int64 { return p.ReplicationSent })
	peerCounter("msfud_fabric_replication_failed_total", "Record replications to this peer that failed.",
		func(p fabric.PeerSnapshot) int64 { return p.ReplicationFailed })
	peerCounter("msfud_fabric_breaker_opened_total", "Times this peer's circuit breaker tripped open.",
		func(p fabric.PeerSnapshot) int64 { return p.BreakerOpened })

	fmt.Fprintf(w, "# HELP msfud_fabric_breaker_state Circuit breaker state per peer (0=closed, 1=half-open, 2=open).\n# TYPE msfud_fabric_breaker_state gauge\n")
	for _, p := range snap.Peers {
		var v int
		switch p.Breaker {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		fmt.Fprintf(w, "msfud_fabric_breaker_state{peer=%q} %d\n", p.Node, v)
	}

	fmt.Fprintf(w, "# HELP msfud_fabric_fallback_computes_total Peer-owned points computed locally because the owner was unavailable.\n# TYPE msfud_fabric_fallback_computes_total counter\nmsfud_fabric_fallback_computes_total %d\n", snap.FallbackComputes)
	fmt.Fprintf(w, "# HELP msfud_fabric_replication_queue Records waiting in the async replication queue.\n# TYPE msfud_fabric_replication_queue gauge\nmsfud_fabric_replication_queue %d\n", snap.ReplicationQueue)
	fmt.Fprintf(w, "# HELP msfud_fabric_replication_dropped_total Replication jobs dropped because the queue was full.\n# TYPE msfud_fabric_replication_dropped_total counter\nmsfud_fabric_replication_dropped_total %d\n", snap.ReplicationDropped)
}

// histogram is a fixed-bucket latency histogram in seconds, shaped like
// a Prometheus histogram (cumulative buckets + sum + count) and able to
// answer quantile estimates for /v1/stats.
type histogram struct {
	counts   []atomic.Int64
	sumNanos atomic.Int64
	total    atomic.Int64
}

// histogramBounds are the bucket upper bounds in seconds; an implicit
// +Inf bucket follows.
var histogramBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(histogramBounds)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(histogramBounds, seconds)
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(seconds * 1e9))
	h.total.Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the rank; an empty histogram reports 0.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, bound := range histogramBounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			if c == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + frac*(bound-lower)
		}
		cum += c
		lower = bound
	}
	return histogramBounds[len(histogramBounds)-1]
}

// write renders the histogram in Prometheus exposition form.
func (h *histogram) write(w http.ResponseWriter, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range histogramBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	cum += h.counts[len(histogramBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}
