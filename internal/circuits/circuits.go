// Package circuits generates the non-distillation Clifford+T workloads
// used to exercise the stitching generalization of §IX ("our proposed
// hierarchical stitching procedure can be applied to other hierarchical
// circuits"): entangling chains, ripple-carry arithmetic (the Toffoli
// ladders quantum chemistry and Shor-style workloads are built from),
// QFT-like all-pairs rotation networks, and synthetic hierarchical
// circuits with tunable block structure. Everything is expressed in the
// toolchain's gate set so the mappers, schedulers and the braid simulator
// apply unchanged.
package circuits

import (
	"fmt"
	"math/rand"

	"magicstate/internal/circuit"
)

// GHZ returns the n-qubit GHZ preparation: H on the root followed by a
// CNOT chain. Its interaction graph is a path — the easiest possible
// mapping target, useful as a control case.
func GHZ(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: GHZ needs >= 2 qubits, got %d", n)
	}
	c := circuit.New(n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CNOT(circuit.Qubit(i), circuit.Qubit(i+1))
	}
	return c, nil
}

// toffoli emits the standard 7-T Clifford+T decomposition of a Toffoli
// gate on (a, b, t). T-dagger shares KindT (same cost, same interaction
// profile).
func toffoli(c *circuit.Circuit, a, b, t circuit.Qubit) {
	c.H(t)
	c.CNOT(b, t)
	c.T(t)
	c.CNOT(a, t)
	c.T(t)
	c.CNOT(b, t)
	c.T(t)
	c.CNOT(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CNOT(a, b)
	c.T(b)
	c.CNOT(a, b)
	c.T(a)
	c.S(b)
}

// TGatesPerToffoli is the T count of the decomposition toffoli emits
// (7 T gates plus one S, which itself costs two T's at execution time).
const TGatesPerToffoli = 7

// CuccaroAdder returns an n-bit ripple-carry adder in the Cuccaro style:
// qubits are laid out as carry-in, then alternating (a_i, b_i) pairs; the
// MAJ ladder ripples the carry up through Toffolis and the UMA ladder
// unwinds it. The interaction graph is a thickened path with strictly
// local structure — the workload class where subdivision stitching has
// planar windows to exploit.
func CuccaroAdder(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: adder needs >= 1 bit, got %d", n)
	}
	// Layout: c0, a0, b0, a1, b1, ..., a_{n-1}, b_{n-1}.
	c := circuit.New(1 + 2*n)
	carry := circuit.Qubit(0)
	a := func(i int) circuit.Qubit { return circuit.Qubit(1 + 2*i) }
	b := func(i int) circuit.Qubit { return circuit.Qubit(2 + 2*i) }

	// MAJ(x, y, z): CNOT z->y, CNOT z->x, Toffoli(x, y, z).
	maj := func(x, y, z circuit.Qubit) {
		c.CNOT(z, y)
		c.CNOT(z, x)
		toffoli(c, x, y, z)
	}
	// UMA(x, y, z): Toffoli(x, y, z), CNOT z->x, CNOT x->y.
	uma := func(x, y, z circuit.Qubit) {
		toffoli(c, x, y, z)
		c.CNOT(z, x)
		c.CNOT(x, y)
	}

	maj(carry, b(0), a(0))
	for i := 1; i < n; i++ {
		maj(a(i-1), b(i), a(i))
	}
	for i := n - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(carry, b(0), a(0))
	return c, nil
}

// QFTLike returns the all-pairs controlled-rotation network of an n-qubit
// quantum Fourier transform with each controlled phase decomposed into
// the CNOT–T–CNOT sandwich. Its interaction graph is complete — the
// adversarial mapping case with no planar structure to exploit.
func QFTLike(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: QFT needs >= 2 qubits, got %d", n)
	}
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(circuit.Qubit(i))
		for j := i + 1; j < n; j++ {
			ctrl, tgt := circuit.Qubit(j), circuit.Qubit(i)
			c.CNOT(ctrl, tgt)
			c.T(tgt)
			c.CNOT(ctrl, tgt)
		}
	}
	return c, nil
}

// RandomCliffordT returns a random circuit of the given two-qubit gate
// count over n qubits: each step applies a CNOT on a uniform qubit pair,
// interleaved with T gates at the given density (T gates per CNOT). The
// same seed reproduces the same circuit.
func RandomCliffordT(n, cnots int, tDensity float64, seed int64) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: random circuit needs >= 2 qubits, got %d", n)
	}
	if cnots < 0 {
		return nil, fmt.Errorf("circuits: negative cnot count %d", cnots)
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(circuit.Qubit(i))
	}
	for g := 0; g < cnots; g++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		c.CNOT(circuit.Qubit(a), circuit.Qubit(b))
		if rng.Float64() < tDensity {
			c.T(circuit.Qubit(b))
		}
	}
	return c, nil
}

// HierarchicalOptions tunes HierarchicalRandom.
type HierarchicalOptions struct {
	// Blocks is the number of dense blocks (>= 2).
	Blocks int
	// QubitsPerBlock sizes each block (>= 2).
	QubitsPerBlock int
	// Phases is how many dense-then-permute phases to emit (>= 1).
	Phases int
	// IntraCNOTs is the dense CNOT count per block per phase.
	IntraCNOTs int
	// BridgeCNOTs is the sparse inter-block CNOT count per phase
	// boundary (the "permutation edges" analogue of Fig. 4b).
	BridgeCNOTs int
	// Barriers inserts a fence between phases, exposing the phase
	// structure to the windowed stitcher exactly as §V.A's barriers
	// expose distillation rounds.
	Barriers bool
	// Shuffle re-partitions qubits into blocks at every phase, the
	// analogue of the inter-round permutation that destroys a factory
	// graph's planarity (Fig. 4b): each phase demands a different
	// locality pattern, so no single static embedding satisfies all of
	// them. Without Shuffle the block membership is static and a global
	// embedding is already near optimal.
	Shuffle bool
	// Seed drives the random choices.
	Seed int64
}

// HierarchicalRandom emits a synthetic circuit with the same two-scale
// structure as a multi-level factory: dense planar-ish activity inside
// blocks, sparse permutation edges between phases. It is the fixture for
// the §IX stitching generalization study: window-stitched mapping should
// beat a single global mapping on it, and neither should beat the other
// on a structure-free RandomCliffordT control.
func HierarchicalRandom(opt HierarchicalOptions) (*circuit.Circuit, error) {
	if opt.Blocks < 2 {
		return nil, fmt.Errorf("circuits: need >= 2 blocks, got %d", opt.Blocks)
	}
	if opt.QubitsPerBlock < 2 {
		return nil, fmt.Errorf("circuits: need >= 2 qubits per block, got %d", opt.QubitsPerBlock)
	}
	if opt.Phases < 1 {
		return nil, fmt.Errorf("circuits: need >= 1 phase, got %d", opt.Phases)
	}
	if opt.IntraCNOTs < 1 {
		opt.IntraCNOTs = 2 * opt.QubitsPerBlock
	}
	if opt.BridgeCNOTs < 0 {
		return nil, fmt.Errorf("circuits: negative bridge count %d", opt.BridgeCNOTs)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := opt.Blocks * opt.QubitsPerBlock
	c := circuit.New(n)
	// member[blk*QubitsPerBlock+i] is the qubit playing slot i of block
	// blk in the current phase; Shuffle re-deals it per phase.
	member := make([]circuit.Qubit, n)
	for i := range member {
		member[i] = circuit.Qubit(i)
	}
	inBlock := func(blk, i int) circuit.Qubit {
		return member[blk*opt.QubitsPerBlock+i]
	}
	all := make([]circuit.Qubit, n)
	for i := range all {
		all[i] = circuit.Qubit(i)
		c.H(all[i])
	}
	for ph := 0; ph < opt.Phases; ph++ {
		if opt.Shuffle && ph > 0 {
			rng.Shuffle(len(member), func(a, b int) { member[a], member[b] = member[b], member[a] })
		}
		for blk := 0; blk < opt.Blocks; blk++ {
			for g := 0; g < opt.IntraCNOTs; g++ {
				// Prefer near-neighbor pairs inside the block so each
				// block's phase subgraph stays (near-)planar.
				i := rng.Intn(opt.QubitsPerBlock)
				span := 1 + rng.Intn(2)
				j := i + span
				if j >= opt.QubitsPerBlock {
					j = i - span
					if j < 0 {
						j = (i + 1) % opt.QubitsPerBlock
					}
				}
				if i == j {
					continue
				}
				c.CNOT(inBlock(blk, i), inBlock(blk, j))
				if rng.Float64() < 0.3 {
					c.T(inBlock(blk, j))
				}
			}
		}
		if ph == opt.Phases-1 {
			break
		}
		// Phase boundary: sparse bridges emulating the inter-round
		// permutation, then an optional barrier.
		for g := 0; g < opt.BridgeCNOTs; g++ {
			ba := rng.Intn(opt.Blocks)
			bb := rng.Intn(opt.Blocks - 1)
			if bb >= ba {
				bb++
			}
			c.CNOT(inBlock(ba, rng.Intn(opt.QubitsPerBlock)), inBlock(bb, rng.Intn(opt.QubitsPerBlock)))
		}
		if opt.Barriers {
			c.Barrier(all)
		}
	}
	return c, nil
}
