package qasm

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is a parsed OpenQASM-2 source: the declarations and gate
// applications of the main body in source order, plus the gate macro
// definitions they may call.
type Program struct {
	Version string
	Stmts   []Stmt
	Gates   map[string]*GateDef
}

// Stmt is a main-body statement.
type Stmt interface{ stmtLine() int }

// QRegDecl declares a quantum register.
type QRegDecl struct {
	Name string
	Size int
	Line int
}

// CRegDecl declares a classical register (tracked only to bounds-check
// measure destinations; bits carry no simulated state).
type CRegDecl struct {
	Name string
	Size int
	Line int
}

// Apply is a gate application (builtin or macro call). Dest is non-nil
// exactly for measure statements.
type Apply struct {
	Name string
	Args []Arg
	Dest *Arg
	Line int
}

// Arg names a register or one indexed element of it.
type Arg struct {
	Reg      string
	Index    int
	HasIndex bool
	Line     int
}

func (s *QRegDecl) stmtLine() int { return s.Line }
func (s *CRegDecl) stmtLine() int { return s.Line }
func (s *Apply) stmtLine() int    { return s.Line }

// GateDef is a parameterless gate macro: formal qubit arguments and a
// body of applications over them.
type GateDef struct {
	Name   string
	Params []string
	Body   []*Apply
	Line   int
}

// Parse turns OpenQASM-2 source into a Program. The version header is
// mandatory and must name a 2.x version; include directives are
// accepted and ignored.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Gates: map[string]*GateDef{}}
	p.parseHeader(prog)
	for !p.at(tokEOF, "") && p.err == nil {
		switch {
		case p.at(tokIdent, "include"):
			p.next()
			p.expect(tokString)
			p.expectPunct(";")
		case p.at(tokIdent, "qreg"), p.at(tokIdent, "creg"):
			prog.Stmts = append(prog.Stmts, p.parseRegDecl())
		case p.at(tokIdent, "gate"):
			g := p.parseGateDef()
			if p.err != nil {
				break
			}
			if _, dup := prog.Gates[g.Name]; dup {
				return nil, fmt.Errorf("qasm:%d: gate %s redefined", g.Line, g.Name)
			}
			prog.Gates[g.Name] = g
		case p.at(tokIdent, "opaque"):
			p.fail("opaque gate declarations are not supported")
		case p.at(tokIdent, "if"):
			p.fail("classically-controlled gates (if) are not supported")
		case p.cur().kind == tokIdent:
			prog.Stmts = append(prog.Stmts, p.parseApply(false))
		case p.accept(tokPunct, ";"):
		default:
			p.fail("expected a declaration or gate application, got %q", p.cur().text)
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
	err  error
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) token {
	if p.cur().kind != kind {
		p.fail("expected token kind %d, got %q", kind, p.cur().text)
		return token{}
	}
	return p.next()
}

func (p *parser) expectPunct(text string) {
	if !p.accept(tokPunct, text) {
		p.fail("expected %q, got %q", text, p.cur().text)
	}
}

func (p *parser) fail(format string, args ...interface{}) {
	if p.err == nil {
		p.err = fmt.Errorf("qasm:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
	}
	// Skip to EOF to stop parsing.
	p.pos = len(p.toks) - 1
}

func (p *parser) parseHeader(prog *Program) {
	if !p.accept(tokIdent, "OPENQASM") {
		p.fail("missing OPENQASM version header")
		return
	}
	v := p.expect(tokNumber).text
	if p.err == nil && !strings.HasPrefix(v, "2") {
		p.fail("unsupported OPENQASM version %s (want 2.x)", v)
		return
	}
	prog.Version = v
	p.expectPunct(";")
}

func (p *parser) parseInt() int {
	t := p.expect(tokNumber)
	if p.err != nil {
		return 0
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		p.fail("expected an integer, got %q", t.text)
		return 0
	}
	return n
}

func (p *parser) parseRegDecl() Stmt {
	kind := p.next().text // qreg | creg
	line := p.cur().line
	name := p.expect(tokIdent).text
	p.expectPunct("[")
	size := p.parseInt()
	p.expectPunct("]")
	p.expectPunct(";")
	if p.err == nil && size <= 0 {
		p.fail("%s %s must have positive size, got %d", kind, name, size)
	}
	if kind == "creg" {
		return &CRegDecl{Name: name, Size: size, Line: line}
	}
	return &QRegDecl{Name: name, Size: size, Line: line}
}

// parseArg parses `name` or `name[i]`; inside gate bodies indices are
// disallowed (formals are single qubits).
func (p *parser) parseArg(inGate bool) Arg {
	t := p.expect(tokIdent)
	a := Arg{Reg: t.text, Line: t.line}
	if p.accept(tokPunct, "[") {
		if inGate {
			p.fail("gate bodies cannot index their qubit arguments")
			return a
		}
		a.Index = p.parseInt()
		a.HasIndex = true
		p.expectPunct("]")
	}
	return a
}

func (p *parser) parseApply(inGate bool) *Apply {
	t := p.expect(tokIdent)
	app := &Apply{Name: t.text, Line: t.line}
	if p.at(tokPunct, "(") {
		p.fail("parameterized gate %q is not supported (the braid mesh executes Clifford+T only)", t.text)
		return app
	}
	for {
		app.Args = append(app.Args, p.parseArg(inGate))
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if app.Name == "measure" {
		if inGate {
			p.fail("measure is not allowed inside a gate body")
			return app
		}
		p.expectPunct("->")
		dest := p.parseArg(false)
		app.Dest = &dest
	}
	p.expectPunct(";")
	return app
}

func (p *parser) parseGateDef() *GateDef {
	line := p.cur().line
	p.next() // gate
	g := &GateDef{Name: p.expect(tokIdent).text, Line: line}
	if p.at(tokPunct, "(") {
		p.fail("parameterized gate definitions are not supported")
		return g
	}
	for p.cur().kind == tokIdent {
		g.Params = append(g.Params, p.next().text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	p.expectPunct("{")
	for !p.at(tokPunct, "}") && p.err == nil {
		if p.accept(tokPunct, ";") {
			continue
		}
		g.Body = append(g.Body, p.parseApply(true))
	}
	p.expectPunct("}")
	return g
}
