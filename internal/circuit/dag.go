package circuit

// DAG is the data-dependency graph of a circuit: Succ[i] lists gates that
// directly depend on gate i, Pred counts are available via InDegree. The
// hazard rule follows the paper's simulator (§VIII.A): the presence of the
// same qubit in two instructions makes the later one depend on the earlier,
// with no commutativity analysis.
type DAG struct {
	NumGates int
	Succ     [][]int
	preds    []int
}

// Deps builds the dependency DAG of c. Each gate depends on the most
// recent earlier gate touching each of its operands (one edge per operand
// chain, deduplicated).
//
// The successor lists are laid out as slices of one shared backing array
// (CSR form), so building the DAG costs a constant number of allocations
// regardless of circuit size; the simulator caches the result per circuit
// and reuses it across repeated simulations.
func Deps(c *Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{NumGates: n}
	d.Succ = make([][]int, n)
	d.preds = make([]int, n)
	last := make([]int, c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	// Pass 1: collect deduplicated (pred, gate) edges in discovery order
	// and count out-degrees. A gate's distinct predecessors are bounded by
	// its operand count, so an O(k^2) scan over a small buffer replaces the
	// per-gate map.
	type edge struct{ p, i int }
	edges := make([]edge, 0, 2*n)
	outdeg := make([]int, n)
	var ops []Qubit
	var pbuf []int
	for i := range c.Gates {
		ops = c.Gates[i].AppendOperands(ops[:0])
		pbuf = pbuf[:0]
		for _, q := range ops {
			if p := last[q]; p >= 0 && p != i {
				dup := false
				for _, e := range pbuf {
					if e == p {
						dup = true
						break
					}
				}
				if !dup {
					pbuf = append(pbuf, p)
					edges = append(edges, edge{p, i})
					outdeg[p]++
					d.preds[i]++
				}
			}
			last[q] = i
		}
	}
	// Pass 2: carve Succ out of one backing array and fill it. Edges were
	// recorded with ascending gate index, so each successor list comes out
	// sorted, matching the per-gate append order of the naive build.
	backing := make([]int, len(edges))
	off := 0
	for p, deg := range outdeg {
		if deg == 0 {
			continue
		}
		d.Succ[p] = backing[off : off : off+deg]
		off += deg
	}
	for _, e := range edges {
		d.Succ[e.p] = append(d.Succ[e.p], e.i)
	}
	return d
}

// InDegree returns the number of direct dependencies of gate i.
func (d *DAG) InDegree(i int) int { return d.preds[i] }

// Topo returns a topological order of gate indices. Program order is
// already topological under the hazard rule, so this simply verifies and
// returns 0..n-1; it exists to make the invariant checkable.
func (d *DAG) Topo() []int {
	order := make([]int, d.NumGates)
	for i := range order {
		order[i] = i
	}
	return order
}

// Levels returns the ASAP level of each gate: level 0 gates have no
// dependencies; otherwise level = 1 + max(level of preds). Gates on the
// same level could execute concurrently given unlimited routing.
func (d *DAG) Levels() []int {
	lvl := make([]int, d.NumGates)
	for i := 0; i < d.NumGates; i++ {
		for _, s := range d.Succ[i] {
			if lvl[i]+1 > lvl[s] {
				lvl[s] = lvl[i] + 1
			}
		}
	}
	return lvl
}

// LongestPath returns, for a per-gate weight function, the weight of the
// heaviest dependency chain in the DAG (the critical path). This is the
// paper's "theoretical lower bound" latency when weights are gate cycle
// counts.
func (d *DAG) LongestPath(weight func(i int) float64) float64 {
	finish := make([]float64, d.NumGates)
	var best float64
	for i := 0; i < d.NumGates; i++ {
		finish[i] += weight(i)
		if finish[i] > best {
			best = finish[i]
		}
		for _, s := range d.Succ[i] {
			if finish[i] > finish[s] {
				finish[s] = finish[i]
			}
		}
	}
	return best
}
