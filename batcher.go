package magicstate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"

	"magicstate/internal/core"
	"magicstate/internal/store"
	"magicstate/internal/sweep"
)

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// Parallelism is the widest worker pool the batcher will ever run
	// (<= 0 means one worker per CPU). Individual batches can narrow it
	// per call via BatchOptions.Parallelism but never widen it.
	Parallelism int
	// Checkpoint, when non-empty, is a directory holding a durable
	// result store: every computed point is persisted there, and future
	// batches — in this process or any later one — serve repeated points
	// from disk instead of recomputing. The directory is created if
	// missing; a store left behind by a killed process is recovered to
	// its longest valid prefix on open.
	Checkpoint string
	// StoreFaults is a test-only fault-injection spec for the checkpoint
	// store, in the grammar of store.ParseFaultPlan (e.g.
	// "failwrite=7,shortwrite=19,stall=10:1ms"). It exists so soak
	// harnesses can exercise store failure recovery deliberately; leave
	// it empty in production. Ignored without a Checkpoint.
	StoreFaults string

	// The three hooks below are the batcher's cluster surface, used by
	// cmd/msfud to stitch batchers on different machines into one
	// sharded cache. They deal in raw keys (the 32-byte canonical
	// config address, see PointKey) and raw record payloads, so no
	// internal types leak into the public API. All are optional and all
	// are best-effort: a hook returning ok=false simply means "proceed
	// locally".

	// RemoteFetch, when set with a Checkpoint, is consulted on a
	// checkpoint-store miss before computing: it may return the record
	// payload for a key from elsewhere (a cluster peer). Returned
	// payloads must decode as stored records; anything else is treated
	// as a miss.
	RemoteFetch func(ctx context.Context, key [32]byte) ([]byte, bool)
	// RemoteEval, when set, is offered each cacheable point that missed
	// every cache tier before it is computed locally: given the point's
	// key and its config JSON, it may return the record payload computed
	// by the point's owning node.
	RemoteEval func(ctx context.Context, key [32]byte, cfgJSON []byte) ([]byte, bool)
	// OnStore, when set with a Checkpoint, observes every record freshly
	// persisted to the checkpoint store (replication feed). It is called
	// outside store locks and must treat the payload as read-only.
	OnStore func(key [32]byte, payload []byte)
}

// Batcher is a reusable optimization runner that carries one cache tier
// — an in-memory memo and, with a checkpoint directory, a durable
// on-disk store — across many Optimize and OptimizeBatch calls. The
// one-shot package functions rebuild that state per call; a Batcher is
// for the long-running callers the ROADMAP aims at (the msfud service
// holds exactly one), where the same (capacity, level, strategy, style,
// seed) points recur across requests and should be computed once, ever.
//
// A Batcher is safe for concurrent use. Close it when done; Close
// flushes and releases the checkpoint store (a memory-only Batcher's
// Close is a no-op).
type Batcher struct {
	eng *sweep.Engine
	st  *store.Store
}

// NewBatcher builds a Batcher. An empty Checkpoint yields a memory-only
// cache; a non-empty one opens (creating or crash-recovering as needed)
// the durable store under that directory.
func NewBatcher(opts BatcherOptions) (*Batcher, error) {
	var st *store.Store
	if opts.Checkpoint != "" {
		var err error
		if opts.StoreFaults != "" {
			plan, perr := store.ParseFaultPlan(opts.StoreFaults)
			if perr != nil {
				return nil, perr
			}
			st, err = store.OpenWithFaults(opts.Checkpoint, plan)
		} else {
			st, err = store.Open(opts.Checkpoint)
		}
		if err != nil {
			return nil, err
		}
		if opts.RemoteFetch != nil {
			fetch := opts.RemoteFetch
			st.SetFetcher(func(ctx context.Context, k store.Key) ([]byte, bool) {
				return fetch(ctx, k)
			})
		}
		if opts.OnStore != nil {
			onStore := opts.OnStore
			st.SetOnPut(func(k store.Key, payload []byte) {
				onStore(k, payload)
			})
		}
	}
	var remote func(ctx context.Context, cfg core.Config) (*core.Report, bool)
	if opts.RemoteEval != nil {
		eval := opts.RemoteEval
		remote = func(ctx context.Context, cfg core.Config) (*core.Report, bool) {
			cfgJSON, err := json.Marshal(cfg)
			if err != nil {
				return nil, false
			}
			payload, ok := eval(ctx, store.KeyOf(cfg), cfgJSON)
			if !ok {
				return nil, false
			}
			var r store.Record
			if err := json.Unmarshal(payload, &r); err != nil {
				return nil, false
			}
			return r.Report(cfg), true
		}
	}
	return &Batcher{
		eng: sweep.New(sweep.Options{Workers: opts.Parallelism, Store: st, Remote: remote}),
		st:  st,
	}, nil
}

// Optimize is Optimize routed through the batcher's cache tier: a point
// already computed by this batcher (or stored by any earlier process
// sharing the checkpoint directory) is served without running the
// pipeline. Trace-carrying runs (Options.Trace) always compute — their
// result includes simulation artifacts the store does not keep.
func (b *Batcher) Optimize(spec FactorySpec, opts Options) (*Result, error) {
	return optimizeOn(b.eng, spec, opts)
}

// OptimizeContext is Optimize with cooperative cancellation: ctx is
// checked at pipeline stage boundaries (factory build, placement,
// simulation), so a caller that goes away — a disconnected HTTP client,
// an expired request deadline — stops costing compute at the next
// boundary. A cancelled computation returns ctx.Err() and caches
// nothing; the next request for the point computes afresh.
func (b *Batcher) OptimizeContext(ctx context.Context, spec FactorySpec, opts Options) (*Result, error) {
	return optimizeOnContext(ctx, b.eng, spec, opts)
}

// Lookup answers a point from the batcher's cache tier without ever
// computing or blocking on an in-flight computation: a completed
// in-memory result first, the durable store second. The boolean reports
// whether the point was cached. It is the degrade-gracefully fast path
// for overloaded services: a point already paid for can be served even
// when no compute budget remains. Trace-carrying options (Options.Trace)
// are never served from the durable tier — the stored scalars cannot
// rebuild a trace — but a completed in-memory entry can satisfy them.
func (b *Batcher) Lookup(spec FactorySpec, opts Options) (*Result, bool) {
	cfg, err := optimizeConfig(spec, opts)
	if err != nil {
		return nil, false
	}
	rep, ok := b.eng.PeekOne(cfg)
	if !ok {
		return nil, false
	}
	res, err := resultFromReport(rep, opts)
	if err != nil {
		return nil, false
	}
	return res, true
}

// PointKey returns the canonical content address of a (spec, opts)
// point — the same key the durable store files results under — as
// lowercase hex. Two points share a key exactly when they lower to the
// same pipeline configuration, which is what makes the key the right
// identity for cross-request singleflight: N concurrent requests whose
// keys match are asking for one computation. The error mirrors what
// Optimize would reject (invalid capacity, unknown names).
func PointKey(spec FactorySpec, opts Options) (string, error) {
	cfg, err := optimizeConfig(spec, opts)
	if err != nil {
		return "", err
	}
	return store.KeyOf(cfg).String(), nil
}

// OptimizeBatch evaluates points like the package-level OptimizeBatch,
// but on the batcher's shared cache tier. opts.Parallelism below the
// batcher's width narrows the pool for this call; zero or anything
// wider uses the batcher's width. The durable tier is fixed at
// construction: opts.Checkpoint must be empty or equal to the
// batcher's own checkpoint directory — naming a different store here
// is an error, not a silent no-op.
func (b *Batcher) OptimizeBatch(points []BatchPoint, opts BatchOptions) ([]*Result, error) {
	if opts.Checkpoint != "" {
		open := ""
		if b.st != nil {
			open = b.st.Dir()
		}
		if !sameDir(opts.Checkpoint, open) {
			return nil, fmt.Errorf("magicstate: batcher checkpoint is %q, set at construction; cannot switch to %q per batch", open, opts.Checkpoint)
		}
	}
	eng := b.eng.Derive(sweep.Options{Workers: opts.Parallelism, Progress: opts.Progress})
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return sweep.Map(ctx, eng, points, func(_ int, pt BatchPoint) (*Result, error) {
		// The batch context reaches each point's pipeline stages, not
		// just the gaps between points: a cancelled batch stops
		// mid-point at the next stage boundary.
		return optimizeOnContext(ctx, eng, pt.Spec, pt.Opts)
	})
}

// CacheStats reports how a Batcher's cache tier has performed.
type CacheStats struct {
	// MemoryHits and MemoryMisses count lookups in the in-process memo.
	MemoryHits, MemoryMisses int64
	// DiskHits counts points served from the checkpoint store instead
	// of recomputed (always zero without a checkpoint). Points the
	// RemoteFetch hook pulled from a peer into the local store count
	// here too — and are broken out in PeerFetchHits.
	DiskHits int64
	// PeerFetchHits counts local store misses served by the RemoteFetch
	// hook (a peer's record, fetched and admitted locally).
	PeerFetchHits int64
	// RemoteEvalHits counts points evaluated by their owning peer via
	// the RemoteEval hook instead of computed here.
	RemoteEvalHits int64
	// StoredRecords is the checkpoint store's live final-record count —
	// one per pipeline point answered.
	StoredRecords int
	// StoredBytes is the checkpoint store's record log size.
	StoredBytes int64
	// CheckpointDir is the store directory ("" when memory-only).
	CheckpointDir string
	// Stage-tier traffic: on a final-record miss the pipeline resolves
	// each stage (factory build, placement, simulation) through its own
	// cache tier. Hits count stage artifacts replayed from the durable
	// store instead of recomputed; Computes count actual stage
	// executions. A sweep that varies only downstream axes shows build
	// (and place) hits where a cold run shows computes.
	StageBuildHits, StageBuildComputes int64
	// StagePlaceHits and StagePlaceComputes are the placement stage's
	// replayed/executed split.
	StagePlaceHits, StagePlaceComputes int64
	// StageSimHits and StageSimComputes are the simulation stage's
	// replayed/executed split.
	StageSimHits, StageSimComputes int64
	// StageRecords is the checkpoint store's live stage-artifact count,
	// held apart from StoredRecords.
	StageRecords int
}

// Stats snapshots the batcher's cache counters.
func (b *Batcher) Stats() CacheStats {
	hits, misses := b.eng.CacheStats()
	ss := b.eng.StageStats()
	cs := CacheStats{
		MemoryHits:     hits,
		MemoryMisses:   misses,
		DiskHits:       b.eng.DiskHits(),
		RemoteEvalHits: b.eng.RemoteHits(),

		StageBuildHits: ss.BuildHits, StageBuildComputes: ss.BuildComputes,
		StagePlaceHits: ss.PlaceHits, StagePlaceComputes: ss.PlaceComputes,
		StageSimHits: ss.SimHits, StageSimComputes: ss.SimComputes,
	}
	if b.st != nil {
		st := b.st.Stats()
		cs.PeerFetchHits = st.PeerHits
		cs.StoredRecords = st.Records
		cs.StoredBytes = st.LogBytes
		cs.CheckpointDir = b.st.Dir()
		cs.StageRecords = st.StageRecords
	}
	return cs
}

// RecordGet returns the raw record payload stored locally under key,
// if any. It is the serving side of a peer's RemoteFetch: strictly
// local — it never computes, never consults this batcher's own remote
// hooks — so two nodes asking each other can never recurse. The
// returned slice must be treated as read-only.
func (b *Batcher) RecordGet(key [32]byte) ([]byte, bool) {
	if b.st == nil {
		return nil, false
	}
	return b.st.Get(key)
}

// RecordPut admits a record payload computed elsewhere into the local
// checkpoint store, after verifying it decodes as a stored record — a
// final result record, or a stage-framed pipeline artifact (the staged
// pipeline replicates its intermediate artifacts over the same feed).
// Callers (the replication receiver) have already byte-verified the
// payload's digest, and this check makes even a digest-valid garbage
// payload inadmissible. A batcher without a checkpoint accepts and
// drops the record.
func (b *Batcher) RecordPut(key [32]byte, payload []byte) error {
	if _, _, isStage := store.StagePayload(payload); isStage {
		if err := store.ValidateStagePayload(payload); err != nil {
			return fmt.Errorf("magicstate: %w", err)
		}
	} else {
		var r store.Record
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil {
			return fmt.Errorf("magicstate: record payload does not decode: %w", err)
		}
	}
	if b.st == nil {
		return nil
	}
	return b.st.Put(key, payload)
}

// EvalConfigJSON evaluates a full pipeline configuration delivered as
// JSON — the serving side of a peer's RemoteEval — through this
// batcher's local cache tier, and returns the point's key and record
// payload. The config must decode strictly (unknown fields are version
// skew between nodes, refused rather than misread) and be cacheable
// (trace-carrying configs have no record form). The evaluation itself
// is local: the caller passes a context the fabric has marked
// non-forwardable, so an owner disagreement between nodes degrades to
// local compute, never to a forwarding loop.
func (b *Batcher) EvalConfigJSON(ctx context.Context, cfgJSON []byte) (key [32]byte, payload []byte, err error) {
	var cfg core.Config
	dec := json.NewDecoder(bytes.NewReader(cfgJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return key, nil, fmt.Errorf("magicstate: config does not decode: %w", err)
	}
	if !store.Cacheable(cfg) {
		return key, nil, fmt.Errorf("magicstate: config is not cacheable; evaluate it locally")
	}
	rep, err := b.eng.RunOneContext(ctx, cfg)
	if err != nil {
		return key, nil, err
	}
	payload, err = json.Marshal(store.RecordOf(rep))
	if err != nil {
		return key, nil, err
	}
	return store.KeyOf(cfg), payload, nil
}

// sameDir reports whether two directory spellings name the same
// location ("ck", "./ck" and the absolute form are all one directory,
// matching how the store's own open-directory guard normalizes paths).
func sameDir(a, b string) bool {
	if a == b {
		return true
	}
	if a == "" || b == "" {
		return false
	}
	absA, errA := filepath.Abs(a)
	absB, errB := filepath.Abs(b)
	return errA == nil && errB == nil && absA == absB
}

// Close flushes and closes the checkpoint store. It is safe to call on
// a memory-only Batcher and safe to call twice.
func (b *Batcher) Close() error {
	if b.st == nil {
		return nil
	}
	return b.st.Close()
}
