package main

// The peer-facing endpoints of a clustered msfud node. These routes are
// only registered when a fabric is configured (-peers). They are the
// serving side of internal/fabric's client calls:
//
//	GET  /v1/record/{key}   serve one store record (read-through fetch)
//	PUT  /v1/record/{key}   accept a replicated record (byte-verified)
//	POST /v1/fabric/eval    evaluate a forwarded point as its owner
//	GET  /v1/ping           liveness for the breaker prober
//	GET  /v1/cluster        aggregated /v1/stats across the cluster
//
// Every record leaving this node travels in a fabric.RecordEnvelope
// carrying its SHA-256; every record arriving is re-hashed and
// key-checked before admission. The -fault-peer plan is applied at the
// top of each record-carrying handler, so chaos tests can make this
// node drop, stall, or serve corrupted bytes on a deterministic
// schedule.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"magicstate/internal/fabric"
	"magicstate/internal/store"
)

// peerFault advances the node's peer fault plan and applies the
// stall/drop faults due for this request; it returns whether the
// response payload must be served corrupted. Drop is implemented as
// http.ErrAbortHandler — the connection dies without a response, which
// is what a partition looks like to the caller.
func (s *server) peerFault() (corrupt bool) {
	f := s.cfg.PeerFaults.Next()
	if f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f.Drop {
		panic(http.ErrAbortHandler)
	}
	return f.Corrupt
}

// corruptPayload flips bits in a copy of the envelope's payload while
// leaving its declared digest intact — the exact failure byte
// verification exists to catch. The original payload (often the
// store's own in-memory slice) is never modified.
func corruptPayload(env fabric.RecordEnvelope) fabric.RecordEnvelope {
	p := append([]byte(nil), env.Payload...)
	for i := range p {
		p[i] ^= 0xff
	}
	env.Payload = p
	return env
}

// handleRecordGet serves one local record to a peer, strictly from the
// local store — it never computes and never fetches, so peer fetches
// cannot cascade.
func (s *server) handleRecordGet(w http.ResponseWriter, r *http.Request) {
	corrupt := s.peerFault()
	k, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	payload, ok := s.batcher.RecordGet(k)
	if !ok {
		httpError(w, http.StatusNotFound, "no record for %s", k)
		return
	}
	env := fabric.NewEnvelope(k, payload)
	if corrupt {
		env = corruptPayload(env)
	}
	writeJSON(w, http.StatusOK, env)
}

// handleRecordPut accepts a record replicated from a peer. The envelope
// must byte-verify against the key in the path AND decode as a stored
// record; anything else is rejected with 400 and nothing is admitted.
// Replication is best-effort on the sender side, so a draining node
// simply refuses with 503.
func (s *server) handleRecordPut(w http.ResponseWriter, r *http.Request) {
	s.peerFault()
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", drainRetryAfterSeconds))
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	k, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var env fabric.RecordEnvelope
	if !decodeJSON(w, r, &env) {
		return
	}
	payload, err := env.Verify(k)
	if err != nil {
		httpError(w, http.StatusBadRequest, "replication rejected: %v", err)
		return
	}
	if err := s.batcher.RecordPut(k, payload); err != nil {
		httpError(w, http.StatusBadRequest, "replication rejected: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFabricEval evaluates a forwarded point as its owner. The
// computation runs under a NoForward context — whatever this node's
// ring says, a forwarded point is computed here, so ownership
// disagreements between nodes degrade to local compute instead of
// looping. The sender's key must match the key this node derives from
// the config (canonical-encoding version skew answers 409, and the
// sender falls back to computing locally). Forwarded evaluations carry
// real compute, so they pay for admission like any local request.
func (s *server) handleFabricEval(w http.ResponseWriter, r *http.Request) {
	corrupt := s.peerFault()
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", drainRetryAfterSeconds))
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req fabric.EvalRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	wantKey, err := store.ParseKey(req.Key)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	ctx = fabric.NoForward(ctx)

	release, err := s.adm.acquire(ctx)
	if err != nil {
		if r.Context().Err() == nil {
			s.rejectQueueFull(w)
		}
		return
	}
	defer release()

	key, payload, err := s.batcher.EvalConfigJSON(ctx, req.Config)
	if err != nil {
		httpError(w, http.StatusBadRequest, "eval: %v", err)
		return
	}
	if store.Key(key) != wantKey {
		httpError(w, http.StatusConflict,
			"key mismatch: you derived %s, this node derives %s (canonical encoding skew?)",
			wantKey, store.Key(key))
		return
	}
	env := fabric.NewEnvelope(key, payload)
	if corrupt {
		env = corruptPayload(env)
	}
	writeJSON(w, http.StatusOK, env)
}

// handlePing answers the breaker prober. A draining node answers 503 so
// peers keep (or re-open) their breakers instead of routing to a node
// about to exit.
func (s *server) handlePing(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", drainRetryAfterSeconds))
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":    s.cfg.Fabric.Self(),
		"records": s.batcher.Stats().StoredRecords,
	})
}

// clusterStatsTimeout bounds the whole peer fan-out of /v1/cluster: the
// view is a dashboard read, and a hung peer should cost a null entry,
// not a hung dashboard.
const clusterStatsTimeout = time.Second

// handleCluster aggregates /v1/stats across the cluster: this node's
// stats computed locally, every peer's fetched concurrently with a
// short timeout. Unreachable peers appear with an error string instead
// of stats — a partial cluster view is the whole point of having one.
func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	fab := s.cfg.Fabric
	snap := fab.Stats()

	type nodeEntry struct {
		Node  string         `json:"node"`
		URL   string         `json:"url,omitempty"`
		Error string         `json:"error,omitempty"`
		Stats map[string]any `json:"stats,omitempty"`
	}
	ctx, cancel := context.WithTimeout(r.Context(), clusterStatsTimeout)
	defer cancel()

	entries := make([]nodeEntry, 0, len(snap.Nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, node := range snap.Nodes {
		if node == fab.Self() {
			entries = append(entries, nodeEntry{Node: node, Stats: s.statsPayload()})
			continue
		}
		url := fab.URL(node)
		if url == "" {
			entries = append(entries, nodeEntry{Node: node, Error: "no URL configured"})
			continue
		}
		entries = append(entries, nodeEntry{Node: node, URL: url})
		i := len(entries) - 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			var stats map[string]any
			err := fetchPeerStats(ctx, url, &stats)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				entries[i].Error = err.Error()
			} else {
				entries[i].Stats = stats
			}
		}()
	}
	wg.Wait()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })

	writeJSON(w, http.StatusOK, map[string]any{
		"self":   fab.Self(),
		"nodes":  entries,
		"fabric": snap,
	})
}

// fetchPeerStats GETs one peer's /v1/stats with a single attempt — the
// cluster view prefers a fast partial answer over a retried slow one.
func fetchPeerStats(ctx context.Context, baseURL string, out *map[string]any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
