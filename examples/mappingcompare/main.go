// Mappingcompare: run every mapping strategy of the paper on the same
// two-level factory and print the Table-I-style comparison, including the
// theoretical lower bound.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"magicstate"
)

func main() {
	spec := magicstate.FactorySpec{Capacity: 16, Levels: 2, Reuse: true}
	strategies := []magicstate.Strategy{
		magicstate.RandomMapping,
		magicstate.LinearMapping,
		magicstate.ForceDirected,
		magicstate.GraphPartitioning,
		magicstate.HierarchicalStitching,
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tlatency\tarea\tvolume\tvs lower bound")
	for _, s := range strategies {
		res, err := magicstate.Optimize(spec, magicstate.Options{Seed: 1}.WithStrategy(s))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4g\t%.2fx\n",
			res.Strategy, res.Latency, res.Area, res.Volume, res.Volume/res.CriticalVolume)
	}
	tw.Flush()
}
