package core

import (
	"testing"
)

func TestRunAllStrategiesSingleLevel(t *testing.T) {
	for _, s := range Strategies(1) {
		rep, err := Run(Config{K: 4, Levels: 1, Strategy: s, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Latency < rep.CriticalLatency {
			t.Errorf("%v: latency %d below critical %d", s, rep.Latency, rep.CriticalLatency)
		}
		if rep.Area != 33 {
			t.Errorf("%v: area %d, want 33", s, rep.Area)
		}
		if rep.Volume != float64(rep.Latency*rep.Area) {
			t.Errorf("%v: volume inconsistent", s)
		}
	}
}

func TestRunAllStrategiesTwoLevel(t *testing.T) {
	for _, s := range Strategies(2) {
		rep, err := Run(Config{K: 2, Levels: 2, Strategy: s, Seed: 2, Reuse: s != StrategyForceDirected})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Latency <= 0 || rep.Area <= 0 {
			t.Errorf("%v: degenerate report %+v", s, rep)
		}
		if rep.PermLatency <= 0 {
			t.Errorf("%v: missing permutation latency", s)
		}
	}
}

func TestStrategyOrderingTwoLevel(t *testing.T) {
	// The paper's headline ordering at scale: HS < GP < Line(NR).
	vol := func(s Strategy, reuse bool) float64 {
		rep, err := Run(Config{K: 4, Levels: 2, Strategy: s, Seed: 3, Reuse: reuse})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Volume
	}
	hs := vol(StrategyStitch, true)
	gp := vol(StrategyGraphPartition, true)
	lineNR := vol(StrategyLinear, false)
	if !(hs < lineNR) {
		t.Errorf("HS (%.3g) should beat Line(NR) (%.3g)", hs, lineNR)
	}
	if !(gp < lineNR) {
		t.Errorf("GP (%.3g) should beat Line(NR) (%.3g)", gp, lineNR)
	}
}

func TestFDNeverWorseThanLine(t *testing.T) {
	for _, levels := range []int{1, 2} {
		line, err := Run(Config{K: 2, Levels: levels, Strategy: StrategyLinear, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		fd, err := Run(Config{K: 2, Levels: levels, Strategy: StrategyForceDirected, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if fd.Volume > line.Volume {
			t.Errorf("L=%d: FD volume %.3g exceeds Line %.3g (FD must keep the better candidate)",
				levels, fd.Volume, line.Volume)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{K: 0, Levels: 1, Strategy: StrategyLinear}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Run(Config{K: 2, Levels: 1, Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		StrategyRandom: "Random", StrategyLinear: "Line", StrategyForceDirected: "FD",
		StrategyGraphPartition: "GP", StrategyStitch: "HS",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d: %q != %q", s, s.String(), n)
		}
	}
}

func TestStrategiesList(t *testing.T) {
	if len(Strategies(1)) != 4 {
		t.Error("level 1 should expose 4 strategies (no HS)")
	}
	if len(Strategies(2)) != 5 {
		t.Error("level 2 should expose 5 strategies")
	}
}

func TestBarrierAblation(t *testing.T) {
	with, err := Run(Config{K: 2, Levels: 2, Strategy: StrategyLinear, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(Config{K: 2, Levels: 2, Strategy: StrategyLinear, Seed: 5, NoBarriers: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without barriers gates can drift across rounds; latency may only
	// shrink or stay similar, never blow up.
	if float64(without.Latency) > 1.2*float64(with.Latency) {
		t.Errorf("removing barriers should not inflate latency: %d vs %d",
			without.Latency, with.Latency)
	}
}
